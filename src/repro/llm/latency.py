"""Latency model for the simulated LLM.

The paper's Table III depends on LLM round-trip latencies (13.28 s for the
TypeScript harness, 22.97 s for Python, both on GPT-4).  We model latency
the way hosted endpoints behave: a fixed overhead plus time proportional
to prompt ingestion and, dominantly, completion generation.  Profiles are
calibrated so GSM8K-style calls land near the paper's measured averages.

Latency is charged on a *virtual clock*: the number is returned with each
completion and accumulated by the caller; nothing sleeps.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator


class LatencyProfile:
    """Seconds of simulated latency per completion."""

    __slots__ = ("base_s", "per_prompt_token_s", "per_completion_token_s", "jitter")

    def __init__(
        self,
        base_s: float,
        per_prompt_token_s: float,
        per_completion_token_s: float,
        jitter: float = 0.10,
    ) -> None:
        self.base_s = base_s
        self.per_prompt_token_s = per_prompt_token_s
        self.per_completion_token_s = per_completion_token_s
        self.jitter = jitter

    def latency(self, prompt_tokens: int, completion_tokens: int, noise: float = 0.0) -> float:
        """Latency in seconds; ``noise`` in [-1, 1] scales the jitter band."""
        nominal = (
            self.base_s
            + self.per_prompt_token_s * prompt_tokens
            + self.per_completion_token_s * completion_tokens
        )
        return max(0.05, nominal * (1.0 + self.jitter * noise))


# Calibration notes: a GSM8K direct-answer call has a prompt of roughly 250
# tokens and a chain-of-thought reply of roughly 220 tokens (Python harness
# replies run longer); a code-generation call replies with ~120 tokens of
# code.  With the profiles below the averages land near the paper's
# Table III measurements.
PROFILES: dict[str, LatencyProfile] = {
    # GPT-4-class: slow decoding dominates (~12 tokens/s as measured in
    # 2023, when the paper's experiments ran).
    "sim-gpt-4": LatencyProfile(base_s=1.1, per_prompt_token_s=0.0012, per_completion_token_s=0.082),
    # GPT-3.5-class: markedly faster decoding.
    "sim-gpt-3.5-turbo-16k": LatencyProfile(
        base_s=0.5, per_prompt_token_s=0.0006, per_completion_token_s=0.018
    ),
}

DEFAULT_PROFILE = PROFILES["sim-gpt-4"]


def profile_for(model: str) -> LatencyProfile:
    """Latency profile for a model name (unknown models get GPT-4's)."""
    return PROFILES.get(model, DEFAULT_PROFILE)


class ConcurrentRegion:
    """Handle for one :meth:`VirtualClock.concurrent` region.

    While the region is open, charges accumulate on *lanes* (one per work
    item when opened by :func:`repro.core.batch.run_batch`, one per thread
    for ad-hoc use).  On exit, ``wall_s`` is the time the lanes would have
    taken executing on ``workers`` parallel slots: the longest lane when
    ``workers`` is unbounded, otherwise a greedy longest-first schedule.
    The estimate depends only on the charged amounts -- never on how the
    OS actually interleaved the threads -- so batch wall-clocks are
    reproducible.
    """

    __slots__ = ("lanes", "wall_s", "workers")

    def __init__(self, workers: int | None = None) -> None:
        self.lanes: dict[object, float] = {}
        self.wall_s = 0.0
        self.workers = workers

    def scheduled_wall_s(self) -> float:
        """Ideal parallel wall-clock of the charged lanes over ``workers``."""
        times = sorted(self.lanes.values(), reverse=True)
        if not times:
            return 0.0
        if self.workers is None or self.workers >= len(times):
            return times[0]
        slots = [0.0] * self.workers
        for duration in times:  # longest-first onto the least-loaded slot
            index = min(range(len(slots)), key=slots.__getitem__)
            slots[index] += duration
        return max(slots)


class VirtualClock:
    """Accumulates simulated seconds; experiments read ``elapsed_s``.

    Thread-safe: concurrent callers may ``charge`` freely.  Outside a
    :meth:`concurrent` region charges add up serially (the pre-batching
    behaviour); inside one, lanes overlap and only the region's scheduled
    wall-clock advances the clock.  Regions bind to threads explicitly
    (:meth:`in_lane`), so two batches overlapping on one clock each keep
    their own accounting instead of stealing each other's charges.
    """

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _frames(self) -> list[tuple[ConcurrentRegion, object]]:
        """This thread's stack of (region, lane-key) bindings."""
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        return frames

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        frames = self._frames()
        with self._lock:
            if frames:
                region, lane = frames[-1]
                region.lanes[lane] = region.lanes.get(lane, 0.0) + seconds
            else:
                self.elapsed_s += seconds

    def now(self) -> float:
        """This thread's current virtual moment, in simulated seconds.

        Outside a :meth:`concurrent` region this is simply ``elapsed_s``.
        Inside one, a thread's "now" is the time already settled on the
        clock plus everything its own lane stack has accumulated -- the
        point on the virtual timeline this thread's work has reached,
        regardless of what sibling lanes are doing.  Rate limiters and
        the request scheduler use this as the arrival time of a request.
        """
        frames = self._frames()
        with self._lock:
            total = self.elapsed_s
            for region, lane in frames:
                total += region.lanes.get(lane, 0.0)
            return total

    @contextlib.contextmanager
    def in_lane(self, region: ConcurrentRegion, lane: object) -> Iterator[None]:
        """Bind this thread's charges to ``region`` under ``lane``.

        Batch workers wrap each work item in one lane, so a region's
        accounting is per item regardless of worker-thread reuse, and
        sibling regions on other threads are unaffected.
        """
        frames = self._frames()
        frames.append((region, lane))
        try:
            yield
        finally:
            frames.pop()

    @contextlib.contextmanager
    def concurrent(self, workers: int | None = None) -> Iterator[ConcurrentRegion]:
        """Open a region in which charged lanes overlap.

        Charges from the opening thread land on its own lane; worker
        threads join via :meth:`in_lane`.  On exit the region's scheduled
        wall-clock is charged onward -- to the enclosing region when this
        one is nested (the inner batch occupies one lane of the outer),
        else to ``elapsed_s``.
        """
        region = ConcurrentRegion(workers)
        try:
            with self.in_lane(region, ("thread", threading.get_ident())):
                yield region
        finally:
            with self._lock:
                region.wall_s = region.scheduled_wall_s()
            self.charge(region.wall_s)

    def reset(self) -> None:
        with self._lock:
            self.elapsed_s = 0.0
