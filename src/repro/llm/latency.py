"""Latency model for the simulated LLM.

The paper's Table III depends on LLM round-trip latencies (13.28 s for the
TypeScript harness, 22.97 s for Python, both on GPT-4).  We model latency
the way hosted endpoints behave: a fixed overhead plus time proportional
to prompt ingestion and, dominantly, completion generation.  Profiles are
calibrated so GSM8K-style calls land near the paper's measured averages.

Latency is charged on a *virtual clock*: the number is returned with each
completion and accumulated by the caller; nothing sleeps.
"""

from __future__ import annotations


class LatencyProfile:
    """Seconds of simulated latency per completion."""

    __slots__ = ("base_s", "per_prompt_token_s", "per_completion_token_s", "jitter")

    def __init__(
        self,
        base_s: float,
        per_prompt_token_s: float,
        per_completion_token_s: float,
        jitter: float = 0.10,
    ) -> None:
        self.base_s = base_s
        self.per_prompt_token_s = per_prompt_token_s
        self.per_completion_token_s = per_completion_token_s
        self.jitter = jitter

    def latency(self, prompt_tokens: int, completion_tokens: int, noise: float = 0.0) -> float:
        """Latency in seconds; ``noise`` in [-1, 1] scales the jitter band."""
        nominal = (
            self.base_s
            + self.per_prompt_token_s * prompt_tokens
            + self.per_completion_token_s * completion_tokens
        )
        return max(0.05, nominal * (1.0 + self.jitter * noise))


# Calibration notes: a GSM8K direct-answer call has a prompt of roughly 250
# tokens and a chain-of-thought reply of roughly 220 tokens (Python harness
# replies run longer); a code-generation call replies with ~120 tokens of
# code.  With the profiles below the averages land near the paper's
# Table III measurements.
PROFILES: dict[str, LatencyProfile] = {
    # GPT-4-class: slow decoding dominates (~12 tokens/s as measured in
    # 2023, when the paper's experiments ran).
    "sim-gpt-4": LatencyProfile(base_s=1.1, per_prompt_token_s=0.0012, per_completion_token_s=0.082),
    # GPT-3.5-class: markedly faster decoding.
    "sim-gpt-3.5-turbo-16k": LatencyProfile(
        base_s=0.5, per_prompt_token_s=0.0006, per_completion_token_s=0.018
    ),
}

DEFAULT_PROFILE = PROFILES["sim-gpt-4"]


def profile_for(model: str) -> LatencyProfile:
    """Latency profile for a model name (unknown models get GPT-4's)."""
    return PROFILES.get(model, DEFAULT_PROFILE)


class VirtualClock:
    """Accumulates simulated seconds; experiments read ``elapsed_s``."""

    def __init__(self) -> None:
        self.elapsed_s = 0.0

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.elapsed_s += seconds

    def reset(self) -> None:
        self.elapsed_s = 0.0
