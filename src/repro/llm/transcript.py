"""Conversation transcript recording.

Debugging a prompt pipeline requires seeing exactly what crossed the
model boundary.  A :class:`TranscriptRecorder` attached to a
:class:`~repro.llm.client.ChatClient` captures every exchange -- prompt,
response, usage, latency -- and renders them as a readable log or JSONL.
The experiments keep recording off (it holds text in memory); tests and
debugging sessions switch it on per client.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.llm.base import ChatMessage, CompletionResult


class Exchange:
    """One request/response pair as seen at the model boundary."""

    __slots__ = ("index", "model", "prompt", "response", "prompt_tokens", "completion_tokens", "latency_s")

    def __init__(
        self,
        index: int,
        model: str,
        prompt: str,
        response: str,
        prompt_tokens: int,
        completion_tokens: int,
        latency_s: float,
    ) -> None:
        self.index = index
        self.model = model
        self.prompt = prompt
        self.response = response
        self.prompt_tokens = prompt_tokens
        self.completion_tokens = completion_tokens
        self.latency_s = latency_s

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "model": self.model,
            "prompt": self.prompt,
            "response": self.response,
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "latency_s": round(self.latency_s, 4),
        }

    def __repr__(self) -> str:
        return f"Exchange(#{self.index}, {self.model}, {self.latency_s:.2f}s)"


class TranscriptRecorder:
    """Accumulates exchanges; attach via ``ChatClient(recorder=...)``."""

    def __init__(self, max_exchanges: int | None = None) -> None:
        self.exchanges: list[Exchange] = []
        self.max_exchanges = max_exchanges

    def record(
        self, model: str, messages: Sequence[ChatMessage], result: CompletionResult
    ) -> None:
        if self.max_exchanges is not None and len(self.exchanges) >= self.max_exchanges:
            del self.exchanges[0]
        prompt = "\n".join(message.content for message in messages)
        self.exchanges.append(
            Exchange(
                len(self.exchanges),
                model,
                prompt,
                result.text,
                result.usage.prompt_tokens,
                result.usage.completion_tokens,
                result.latency_s,
            )
        )

    def clear(self) -> None:
        self.exchanges.clear()

    def __len__(self) -> int:
        return len(self.exchanges)

    # -- rendering -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per exchange, newline-separated."""
        return "\n".join(json.dumps(exchange.to_json()) for exchange in self.exchanges)

    def render(self, max_chars: int = 400) -> str:
        """Human-readable log with long payloads elided."""
        lines: list[str] = []
        for exchange in self.exchanges:
            lines.append(
                f"--- exchange #{exchange.index} [{exchange.model}] "
                f"{exchange.latency_s:.2f}s "
                f"({exchange.prompt_tokens}+{exchange.completion_tokens} tokens) ---"
            )
            lines.append(">>> prompt")
            lines.append(_elide(exchange.prompt, max_chars))
            lines.append("<<< response")
            lines.append(_elide(exchange.response, max_chars))
        return "\n".join(lines)


def _elide(text: str, max_chars: int) -> str:
    if len(text) <= max_chars:
        return text
    headroom = max_chars // 2
    return f"{text[:headroom]}\n   ... [{len(text) - max_chars} chars elided] ...\n{text[-headroom:]}"
