"""Failure injection for the simulated LLM.

Real models intermittently produce malformed output: replies without the
JSON fence, objects missing the ``answer`` field, type-mismatched values,
and buggy code.  The noise policy reproduces those modes at configurable
rates so AskIt's retry/feedback machinery is genuinely exercised.

Corruption decisions are drawn from a deterministic per-call RNG seeded
from the policy seed, the prompt text, and a call counter, so whole
experiment runs are reproducible while retries still see fresh draws.
"""

from __future__ import annotations

import hashlib
import random

# Corruption kinds for direct-answer responses.
CLEAN = "clean"
DROP_FENCE = "drop_fence"  # reply as prose, no ```json block
MISSING_ANSWER = "missing_answer"  # JSON present but no 'answer' field
WRONG_TYPE = "wrong_type"  # 'answer' present but as a string-ified value


class NoisePolicy:
    """Failure rates for the simulated model.

    ``direct_corruption_rate`` is the total probability that a first-try
    direct answer is malformed (split evenly across the three modes);
    ``buggy_code_rate`` is the probability that a first-try code
    generation has a planted bug (when the task has a known buggy
    variant).  Feedback attempts halve the rates per retry, modeling the
    paper's observation that pointed re-instruction converges.
    """

    def __init__(
        self,
        direct_corruption_rate: float = 0.12,
        buggy_code_rate: float = 0.25,
        seed: int = 20240301,
    ) -> None:
        if not 0.0 <= direct_corruption_rate <= 1.0:
            raise ValueError("direct_corruption_rate must be in [0, 1]")
        if not 0.0 <= buggy_code_rate <= 1.0:
            raise ValueError("buggy_code_rate must be in [0, 1]")
        self.direct_corruption_rate = direct_corruption_rate
        self.buggy_code_rate = buggy_code_rate
        self.seed = seed

    # -- RNG ------------------------------------------------------------

    def rng_for(self, prompt: str, call_index: int) -> random.Random:
        digest = hashlib.sha256(
            f"{self.seed}|{call_index}|{prompt}".encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # -- decisions ----------------------------------------------------------

    def direct_corruption(self, rng: random.Random, attempt: int) -> str:
        """Which corruption (if any) to apply to a direct answer."""
        rate = self.direct_corruption_rate * (0.5 ** attempt)
        roll = rng.random()
        if roll >= rate:
            return CLEAN
        which = rng.random()
        if which < 1 / 3:
            return DROP_FENCE
        if which < 2 / 3:
            return MISSING_ANSWER
        return WRONG_TYPE

    def code_is_buggy(self, rng: random.Random, attempt: int) -> bool:
        """Whether a code generation attempt ships the planted bug."""
        rate = self.buggy_code_rate * (0.5 ** attempt)
        return rng.random() < rate


QUIET = NoisePolicy(direct_corruption_rate=0.0, buggy_code_rate=0.0)


def stable_fraction(text: str, salt: str = "") -> float:
    """A deterministic pseudo-uniform value in [0, 1) derived from text.

    Used for *persistent* failure modes (a problem the model simply cannot
    solve stays unsolvable across retries), as opposed to the per-call
    randomness of :class:`NoisePolicy`.
    """
    digest = hashlib.sha256(f"{salt}|{text}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64
