"""Open-domain solvers: the "directly answerable, non-codable" tasks.

These model the abilities LLMs have that classical code does not:
sentiment analysis, small-talk knowledge (book lists), and natural-
language arithmetic.  Each solver pattern-matches the task text and
produces a Python value; the simulated model renders it as a typed JSON
answer.
"""

from __future__ import annotations

import hashlib
import re
from typing import Any

_POSITIVE_WORDS = frozenset(
    """great fantastic excellent amazing love loved loves wonderful good best
    awesome perfect superb delightful happy pleased impressive exceeds
    exceeded recommend recommended outstanding brilliant enjoyable
    satisfied""".split()
)

_NEGATIVE_WORDS = frozenset(
    """bad terrible awful horrible hate hated poor worst disappointing
    disappointed broken useless waste refund defective slow annoying
    frustrating unusable regret mediocre""".split()
)

_WORD_RE = re.compile(r"[a-z']+")


def analyze_sentiment(text: str) -> str:
    """Lexicon-based sentiment: ``'positive'`` or ``'negative'``.

    Ties break positive, matching the paper's running example.
    """
    words = _WORD_RE.findall(text.lower())
    score = 0
    negate = False
    for word in words:
        if word in ("not", "never", "no", "isn't", "wasn't", "don't", "doesn't"):
            negate = True
            continue
        delta = 0
        if word in _POSITIVE_WORDS:
            delta = 1
        elif word in _NEGATIVE_WORDS:
            delta = -1
        if negate and delta:
            delta = -delta
            negate = False
        score += delta
    return "positive" if score >= 0 else "negative"


_SENTIMENT_RE = re.compile(r"sentiment of", re.IGNORECASE)


def match_sentiment(task: str, bindings: dict[str, Any]) -> str | None:
    """Solve sentiment tasks; the review is the sole string binding or the
    quoted text inside the task itself."""
    if not _SENTIMENT_RE.search(task):
        return None
    for value in bindings.values():
        if isinstance(value, str):
            return analyze_sentiment(value)
    quoted = re.search(r'"([^"]+)"', task)
    if quoted:
        return analyze_sentiment(quoted.group(1))
    return analyze_sentiment(task)


_BOOKS_RE = re.compile(r"list (\d+|'\w+' = )?.*books? on", re.IGNORECASE)

_BOOK_ADJECTIVES = [
    "Foundations of", "The Art of", "Principles of", "Elements of",
    "Introduction to", "Advanced", "The Structure of", "Reflections on",
    "A Discipline of", "Patterns of",
]

_BOOK_AUTHORS = [
    "A. Turing", "G. Hopper", "D. Knuth", "B. Liskov", "E. Dijkstra",
    "J. Backus", "A. Lovelace", "J. McCarthy", "N. Wirth", "F. Brooks",
]


def classic_books(n: int, subject: str) -> list[dict[str, Any]]:
    """A deterministic list of ``n`` plausible classic books on a subject."""
    books: list[dict[str, Any]] = []
    for index in range(n):
        digest = hashlib.sha256(f"{subject}|{index}".encode()).digest()
        adjective = _BOOK_ADJECTIVES[digest[0] % len(_BOOK_ADJECTIVES)]
        author = _BOOK_AUTHORS[digest[1] % len(_BOOK_AUTHORS)]
        year = 1950 + digest[2] % 50
        title = f"{adjective} {subject.title()}"
        if index:
            title = f"{title}, Volume {index + 1}"
        books.append({"title": title, "author": author, "year": year})
    return books


def match_books(task: str, bindings: dict[str, Any]) -> list[dict[str, Any]] | None:
    if not re.search(r"\bbooks?\b", task, re.IGNORECASE) or "list" not in task.lower():
        return None
    n = None
    subject = None
    for value in bindings.values():
        if isinstance(value, int) and n is None:
            n = value
        elif isinstance(value, str) and subject is None:
            subject = value
    if n is None:
        inline = re.search(r"list (\d+)", task, re.IGNORECASE)
        n = int(inline.group(1)) if inline else 5
    if subject is None:
        subject = "computer science"
    return classic_books(n, subject)


_ARITHMETIC_RE = re.compile(
    r"what is (-?\d+(?:\.\d+)?) (times|plus|minus|divided by) (-?\d+(?:\.\d+)?)",
    re.IGNORECASE,
)


def match_arithmetic(task: str, bindings: dict[str, Any]) -> float | None:
    """Answer ``What is 7 times 8?`` style questions."""
    match = _ARITHMETIC_RE.search(task)
    if match is None:
        return None
    left = float(match.group(1))
    right = float(match.group(3))
    operation = match.group(2).lower()
    if operation == "times":
        result = left * right
    elif operation == "plus":
        result = left + right
    elif operation == "minus":
        result = left - right
    else:
        if right == 0:
            return None
        result = left / right
    return result


def solve_worldly(task: str, bindings: dict[str, Any]) -> tuple[bool, Any]:
    """Try all open-domain solvers; returns (matched, value)."""
    sentiment = match_sentiment(task, bindings)
    if sentiment is not None:
        return True, sentiment
    books = match_books(task, bindings)
    if books is not None:
        return True, books
    arithmetic = match_arithmetic(task, bindings)
    if arithmetic is not None:
        return True, arithmetic
    return False, None
