"""Task solvers backing the simulated model's direct answers."""

from repro.llm.solvers.mathword import (
    CODEGEN_FAILURE_RATE,
    DIRECT_FAILURE_RATE,
    WordProblemAnswer,
    is_hard_instance,
    is_uncodable_family,
    solve_word_problem,
)
from repro.llm.solvers.worldly import analyze_sentiment, classic_books, solve_worldly

__all__ = [
    "solve_word_problem",
    "WordProblemAnswer",
    "is_hard_instance",
    "is_uncodable_family",
    "DIRECT_FAILURE_RATE",
    "CODEGEN_FAILURE_RATE",
    "analyze_sentiment",
    "classic_books",
    "solve_worldly",
]
