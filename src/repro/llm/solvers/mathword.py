"""Word-problem solver: the simulated model's GSM8K competence.

Given a problem text (numbers already substituted), the solver masks the
quantities, matches the skeleton against registered problem families, and
evaluates the family's expression tree on the extracted numbers --
"reading" the problem the way a model that has seen grade-school math
does.

Model fallibility is reproduced with a *persistent* per-instance gate:
a deterministic hash of the problem text marks ~13.5 % of instances as
beyond the model, for which the solver returns a subtly wrong value (the
perturbed expression).  This matches GPT-4's measured 86-88 % GSM8K
accuracy in the paper and stays stable across retries, as real failures
do.
"""

from __future__ import annotations

from repro.llm.knowledge import KnowledgeBase, mask_numbers
from repro.llm.noise import stable_fraction
from repro.mathexpr import perturb

#: Fraction of instances the simulated model cannot solve directly
#: (calibrated to the paper's 1,159/1,319 Python and 1,138/1,319
#: TypeScript direct-solve counts).
DIRECT_FAILURE_RATE = 0.135

#: Fraction of *families* the model cannot write correct code for.  The
#: paper lost 24/1,138 (TS) and 25/1,159 (Py) problems to codegen; at 36
#: families one uncodable family reproduces that ~2 % loss (the threshold
#: is set so exactly one family's hash falls under it).
CODEGEN_FAILURE_RATE = 0.03


class WordProblemAnswer:
    """The solver's output: value plus a rendered chain of thought."""

    __slots__ = ("value", "reason", "is_correct")

    def __init__(self, value: float, reason: str, is_correct: bool) -> None:
        self.value = value
        self.reason = reason
        self.is_correct = is_correct


def solve_word_problem(
    knowledge: KnowledgeBase, problem_text: str
) -> WordProblemAnswer | None:
    """Solve a word problem, or ``None`` when no family matches."""
    found = knowledge.find_family(problem_text)
    if found is None:
        return None
    family, numbers = found
    env = {f"n{index}": value for index, value in enumerate(numbers)}

    hard = is_hard_instance(problem_text)
    if hard:
        wrong = perturb(family.expression).evaluate(env)
        true_value = family.expression.evaluate(env)
        if wrong == true_value:
            wrong = true_value + 1
        reason = _render_reason(family, env, wrong)
        return WordProblemAnswer(_canonical(wrong), reason, False)

    value = family.expression.evaluate(env)
    return WordProblemAnswer(_canonical(value), _render_reason(family, env, value), True)


def is_hard_instance(problem_text: str) -> bool:
    """Deterministic per-instance gate for direct-answer failures."""
    masked, numbers = mask_numbers(problem_text)
    key = masked + "|" + ",".join(repr(number) for number in numbers)
    return stable_fraction(key, salt="gsm8k-direct") < DIRECT_FAILURE_RATE


def is_uncodable_family(skeleton: str) -> bool:
    """Deterministic per-family gate for codegen failures."""
    return stable_fraction(skeleton, salt="gsm8k-codegen") < CODEGEN_FAILURE_RATE


def _canonical(value: float) -> float | int:
    if float(value).is_integer():
        return int(value)
    return value


def _render_reason(family, env: dict[str, float], value) -> str:
    """A chain-of-thought paragraph in the style GPT-4 produces.

    Verbosity matters: completion length drives the latency model, and
    real models narrate these problems step by step.
    """
    lines = ["Let me work through this step by step."]
    for name, number in env.items():
        lines.append(
            f"First, I identify the quantity {name}, which the problem "
            f"states is {_canonical(number)}."
        )
    lines.append(
        f"The question asks me to combine these quantities, which "
        f"corresponds to computing {family.expression.emit()}."
    )
    intermediate = family.expression.emit()
    for name, number in env.items():
        intermediate = intermediate.replace(name, str(_canonical(number)))
    lines.append(f"Substituting the values gives {intermediate}.")
    lines.append(
        f"Evaluating this expression yields {_canonical(value)}, so the "
        f"final answer is {_canonical(value)}."
    )
    return " ".join(lines)
