"""Record/replay cassettes for wire-provider traffic.

A cassette directory holds one JSON file per recorded HTTP interaction,
content-addressed exactly the way the response cache addresses
completions (:func:`repro.core.response_cache.response_key`): a SHA-256
over a canonical JSON rendering of everything that determines the
reply -- method, redacted URL, and the (JSON-canonicalized) request
body.  Identical requests therefore hash to identical file names in
every process, which is what makes recordings shareable, diffable, and
stable across machines.

:class:`CassetteTransport` plugs into :class:`~repro.llm.http.HTTPClient`
like any transport:

* ``replay`` (the default) -- strictly hermetic: a request with no
  recording raises :class:`~repro.errors.CassetteMissError` naming the
  missing key; nothing ever touches the network.
* ``record`` -- always forwards to the inner (live) transport and
  overwrites the recording.
* ``auto`` -- replay when a recording exists, record otherwise (the
  mode ``REPRO_LIVE=1`` runs use to grow a cassette library).

Recordings never contain credentials: ``Authorization``, API-key
headers, and key-carrying query parameters are redacted on write (and
excluded from the key derivation, so a replay run without keys matches
a recording made with them).  Replayed responses carry their *recorded*
round-trip time as ``elapsed_s``, keeping latency accounting
deterministic on the virtual clock.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any
from urllib.parse import parse_qsl, urlencode, urlsplit, urlunsplit

from repro.errors import CassetteMissError, ConfigError, TransportError
from repro.llm.http import HTTPRequest, HTTPResponse, Transport

#: Bumped whenever the key derivation or recording layout changes, so a
#: stale on-disk format can never replay as a current recording.
CASSETTE_FORMAT_VERSION = 1

#: The modes a :class:`CassetteTransport` accepts.
CASSETTE_MODES = ("replay", "record", "auto")

#: What redacted secrets are replaced with in recorded files.
REDACTED = "[REDACTED]"

#: Headers whose values are secrets (case-insensitive match).
SENSITIVE_HEADERS = frozenset(
    {
        "authorization",
        "proxy-authorization",
        "x-api-key",
        "api-key",
        "x-goog-api-key",
        "openai-organization",
        "cookie",
        "set-cookie",
    }
)

#: URL query parameters whose values are secrets.
SENSITIVE_QUERY_PARAMS = frozenset({"key", "api_key", "apikey", "access_token"})


def redact_headers(headers: dict[str, str]) -> dict[str, str]:
    """A copy of ``headers`` with every secret-bearing value replaced."""
    return {
        name: (REDACTED if name.lower() in SENSITIVE_HEADERS else value)
        for name, value in headers.items()
    }


def redact_url(url: str) -> str:
    """``url`` with secret-bearing query parameter values replaced."""
    parts = urlsplit(url)
    if not parts.query:
        return url
    cleaned = [
        (name, REDACTED if name.lower() in SENSITIVE_QUERY_PARAMS else value)
        for name, value in parse_qsl(parts.query, keep_blank_values=True)
    ]
    return urlunsplit(parts._replace(query=urlencode(cleaned)))


def _canonical_body(body: bytes | None) -> Any:
    """The request body in canonical form for hashing and storage.

    JSON bodies canonicalize to their parsed value (so key order and
    whitespace never perturb the hash); anything else falls back to a
    base64 marker object.
    """
    if body is None:
        return None
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return {"__base64__": base64.b64encode(body).decode("ascii")}


def cassette_key(request: HTTPRequest) -> str:
    """The content address of one wire request.

    Mirrors :func:`repro.core.response_cache.response_key`: a SHA-256
    over a sorted-key JSON rendering of the request's identity --
    method, redacted URL, canonical body.  Headers are deliberately
    excluded: they carry credentials and client chrome, not identity,
    so a replay run without API keys hashes to the same recordings a
    keyed recording run produced.
    """
    payload = {
        "v": CASSETTE_FORMAT_VERSION,
        "method": request.method,
        "url": redact_url(request.url),
        "body": _canonical_body(request.body),
    }
    canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode_bytes(data: bytes) -> dict[str, Any]:
    """Bytes as a JSON-storable object (utf-8 text when possible)."""
    try:
        return {"text": data.decode("utf-8")}
    except UnicodeDecodeError:
        return {"base64": base64.b64encode(data).decode("ascii")}


def _decode_bytes(stored: dict[str, Any]) -> bytes:
    if "text" in stored:
        return stored["text"].encode("utf-8")
    return base64.b64decode(stored["base64"])


class CassetteTransport:
    """A recording/replaying :class:`~repro.llm.http.Transport`.

    ``directory`` holds one ``<key>.json`` per interaction.  ``inner``
    is the live transport consulted in ``record``/``auto`` mode; replay
    mode needs none and can therefore run with sockets blocked.
    """

    def __init__(
        self,
        directory: Path | str,
        *,
        mode: str = "replay",
        inner: Transport | None = None,
        time_source=time.time,
    ) -> None:
        if mode not in CASSETTE_MODES:
            raise ConfigError(
                f"cassette mode must be one of {CASSETTE_MODES}, got {mode!r}"
            )
        if mode == "record" and inner is None:
            raise ConfigError("cassette 'record' mode requires an inner transport")
        self.directory = Path(directory)
        self.mode = mode
        self.inner = inner
        self._now = time_source
        #: Interactions served from disk since construction.
        self.replayed = 0
        #: Interactions forwarded to the inner transport and recorded.
        self.recorded = 0

    key = staticmethod(cassette_key)

    def path_for(self, request: HTTPRequest) -> Path:
        """Where ``request``'s recording lives (whether or not it exists)."""
        return self.directory / f"{cassette_key(request)}.json"

    def __call__(self, request: HTTPRequest) -> HTTPResponse:
        """Replay ``request`` from disk, or record it via the inner transport."""
        key = cassette_key(request)
        path = self.directory / f"{key}.json"
        if self.mode != "record":
            response = self._load(path)
            if response is not None:
                self.replayed += 1
                return response
            if self.mode == "replay":
                raise CassetteMissError(
                    f"no cassette recording for {request.method} "
                    f"{redact_url(request.url)} (key {key[:16]}...) in "
                    f"{self.directory}; record one with REPRO_LIVE=1 "
                    "(cassette mode 'auto'/'record') or point "
                    "REPRO_CASSETTE_DIR at the right directory",
                    key=key,
                    url=redact_url(request.url),
                )
        if self.inner is None:
            raise TransportError(
                "cassette has no recording and no live inner transport "
                f"to record with (mode {self.mode!r})",
                url=redact_url(request.url),
            )
        response = self.inner(request)
        self._store(key, path, request, response)
        self.recorded += 1
        return response

    # -- disk layer ---------------------------------------------------------

    def _load(self, path: Path) -> HTTPResponse | None:
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(raw, dict) or raw.get("version") != CASSETTE_FORMAT_VERSION:
            return None
        try:
            stored = raw["response"]
            return HTTPResponse(
                int(stored["status"]),
                dict(stored.get("headers", {})),
                _decode_bytes(stored["body"]),
                float(stored.get("elapsed_s", 0.0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _store(
        self, key: str, path: Path, request: HTTPRequest, response: HTTPResponse
    ) -> None:
        payload = {
            "version": CASSETTE_FORMAT_VERSION,
            "key": key,
            "recorded_at": self._now(),
            "request": {
                "method": request.method,
                "url": redact_url(request.url),
                "headers": redact_headers(request.headers),
                "body": _canonical_body(request.body),
            },
            "response": {
                "status": response.status,
                "headers": redact_headers(response.headers),
                "body": _encode_bytes(response.body),
                "elapsed_s": response.elapsed_s,
            },
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, ensure_ascii=False, indent=2, sort_keys=True)
        # Atomic write (temp + rename), same discipline as the response
        # cache, so concurrent readers never see a truncated recording.
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, path)

    def __len__(self) -> int:
        """How many recordings the cassette directory currently holds."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return (
            f"CassetteTransport({str(self.directory)!r}, mode={self.mode!r}, "
            f"replayed={self.replayed}, recorded={self.recorded})"
        )


__all__ = [
    "CASSETTE_FORMAT_VERSION",
    "CASSETTE_MODES",
    "REDACTED",
    "SENSITIVE_HEADERS",
    "SENSITIVE_QUERY_PARAMS",
    "CassetteTransport",
    "cassette_key",
    "redact_headers",
    "redact_url",
]
