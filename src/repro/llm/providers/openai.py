"""The OpenAI wire adapter (``chat.completions`` shape) and its stub.

Canonical request/response marshalling for OpenAI-compatible endpoints
-- ``POST {base}/chat/completions`` with ``model``/``messages``/
``temperature``, replies carrying ``choices`` and ``usage``.  This is
the one OpenAI code path in the registry: the local test stub
(:class:`OpenAIStubProvider`, below) subclasses it and swaps the
transport for an in-process responder, so the stub exercises exactly
these adapters and can never drift from the wire shape.

Registered for the ``gpt-`` and ``openai-`` model-name prefixes.  The
key comes from ``OPENAI_API_KEY``; ``OPENAI_BASE_URL`` points the
adapter at any compatible endpoint (proxies, local servers).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.llm.base import ChatMessage, CompletionResult, Usage
from repro.llm.http import HTTPClient, HTTPRequest, HTTPResponse
from repro.llm.providers.wire import WirePolicy, WireProvider
from repro.llm.tokenizer import count_tokens

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient

#: Seconds of simulated latency the stub reports per completion.
STUB_LATENCY_S = 0.01

Responder = Callable[[dict[str, Any]], dict[str, Any]]


class OpenAIProvider(WireProvider):
    """Real OpenAI ``chat.completions`` backend over the shared transport."""

    name = "openai"
    api_key_env = "OPENAI_API_KEY"
    base_url_env = "OPENAI_BASE_URL"
    default_base_url = "https://api.openai.com/v1"

    def build_request(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> HTTPRequest:
        """``POST /chat/completions`` with the standard body shape."""
        payload = {
            "model": self.wire_model(model),
            "temperature": temperature,
            "messages": [
                {"role": message.role, "content": message.content}
                for message in messages
            ],
        }
        return HTTPRequest.json_request(
            "POST",
            f"{self.base_url}/chat/completions",
            payload,
            {"Authorization": f"Bearer {self.api_key()}"},
        )

    def parse_payload(self, payload: dict) -> tuple[str, int, int]:
        """First choice's message content plus the usage block."""
        text = payload["choices"][0]["message"]["content"]
        usage = payload.get("usage", {})
        return (
            text,
            usage.get("prompt_tokens", 0),
            usage.get("completion_tokens", 0),
        )

    @staticmethod
    def wire_model(model: str) -> str:
        """The model name sent on the wire.

        The registry routes ``openai-<name>`` here as a namespaced
        alias; the prefix is stripped so ``openai-gpt-4o-mini`` asks
        the endpoint for ``gpt-4o-mini``.  Bare ``gpt-*`` names pass
        through untouched.
        """
        if model.startswith("openai-"):
            return model[len("openai-"):]
        return model


def _echo_responder(request: dict[str, Any]) -> dict[str, Any]:
    """Default responder: acknowledge the last user message."""
    last = request["messages"][-1]["content"] if request["messages"] else ""
    text = f"[stub:{request['model']}] {last[:120]}"
    prompt_tokens = sum(
        count_tokens(message["content"]) + 4 for message in request["messages"]
    )
    return {
        "id": "chatcmpl-stub",
        "object": "chat.completion",
        "model": request["model"],
        "choices": [
            {
                "index": 0,
                "message": {"role": "assistant", "content": text},
                "finish_reason": "stop",
            }
        ],
        "usage": {
            "prompt_tokens": prompt_tokens,
            "completion_tokens": count_tokens(text),
        },
    }


class _ResponderTransport:
    """A :class:`~repro.llm.http.Transport` backed by a local responder."""

    def __init__(self, responder: Responder) -> None:
        self._responder = responder

    def __call__(self, request: HTTPRequest) -> HTTPResponse:
        reply = self._responder(request.json())
        return HTTPResponse(
            200,
            {"Content-Type": "application/json"},
            json.dumps(reply, ensure_ascii=False).encode("utf-8"),
            STUB_LATENCY_S,
        )


class OpenAIStubProvider(OpenAIProvider):
    """The canonical OpenAI adapter mounted on an in-process responder.

    Tests register it under a prefix of their choosing via
    :func:`repro.llm.providers.register_provider`; a custom
    ``responder`` (a ``dict -> dict`` function over the wire shapes)
    scripts the replies.
    """

    name = "openai-stub"
    supports_async = True
    deterministic = True

    def __init__(
        self,
        client: "ChatClient | None" = None,
        responder: Responder | None = None,
    ) -> None:
        # ``client`` is accepted (and ignored) so the class itself can be
        # passed to register_provider as a factory.
        super().__init__(
            None,
            api_key="stub-key",
            policy=WirePolicy(live=False, cassette_dir=None, env={}),
            http=HTTPClient(_ResponderTransport(responder or _echo_responder)),
        )

    # -- wire marshalling (back-compat dict shapes) --------------------------

    def build_request(  # type: ignore[override]
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> dict[str, Any]:
        """The request *body* as a dict (the stub's historical shape).

        The real adapter's :meth:`OpenAIProvider.build_request` returns
        a full :class:`~repro.llm.http.HTTPRequest`; the stub keeps its
        original dict-shaped helper for tests that inspect the wire
        body directly, and rebuilds the HTTP envelope in
        :meth:`wire_request`.
        """
        return super().build_request(model, messages, temperature).json()

    def wire_request(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> HTTPRequest:
        """The full HTTP envelope the canonical adapter would send."""
        return OpenAIProvider.build_request(self, model, messages, temperature)

    # -- Provider ------------------------------------------------------------

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """Serve one completion through the canonical adapter pipeline."""
        request = self.wire_request(model, messages, temperature)
        payload, response = self.http.send(request, model=model)
        text, prompt_tokens, completion_tokens = self.parse_payload(payload)
        return CompletionResult(
            text,
            Usage(int(prompt_tokens), int(completion_tokens)),
            response.elapsed_s,
            model,
        )

    async def acomplete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """Native async path: no thread hop, the responder is local."""
        return self.complete(model, messages, temperature)
