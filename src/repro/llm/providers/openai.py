"""The OpenAI wire adapter (``chat.completions`` shape).

Canonical request/response marshalling for OpenAI-compatible endpoints
-- ``POST {base}/chat/completions`` with ``model``/``messages``/
``temperature``, replies carrying ``choices`` and ``usage``.  This is
the one OpenAI code path in the registry: the local test stub
(:mod:`repro.llm.providers.openai_stub`) subclasses it and swaps the
transport, so the stub exercises exactly these adapters.

Registered for the ``gpt-`` and ``openai-`` model-name prefixes.  The
key comes from ``OPENAI_API_KEY``; ``OPENAI_BASE_URL`` points the
adapter at any compatible endpoint (proxies, local servers).
"""

from __future__ import annotations

from typing import Sequence

from repro.llm.base import ChatMessage
from repro.llm.http import HTTPRequest
from repro.llm.providers.wire import WireProvider

class OpenAIProvider(WireProvider):
    """Real OpenAI ``chat.completions`` backend over the shared transport."""

    name = "openai"
    api_key_env = "OPENAI_API_KEY"
    base_url_env = "OPENAI_BASE_URL"
    default_base_url = "https://api.openai.com/v1"

    def build_request(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> HTTPRequest:
        """``POST /chat/completions`` with the standard body shape."""
        payload = {
            "model": self.wire_model(model),
            "temperature": temperature,
            "messages": [
                {"role": message.role, "content": message.content}
                for message in messages
            ],
        }
        return HTTPRequest.json_request(
            "POST",
            f"{self.base_url}/chat/completions",
            payload,
            {"Authorization": f"Bearer {self.api_key()}"},
        )

    def parse_payload(self, payload: dict) -> tuple[str, int, int]:
        """First choice's message content plus the usage block."""
        text = payload["choices"][0]["message"]["content"]
        usage = payload.get("usage", {})
        return (
            text,
            usage.get("prompt_tokens", 0),
            usage.get("completion_tokens", 0),
        )

    @staticmethod
    def wire_model(model: str) -> str:
        """The model name sent on the wire.

        The registry routes ``openai-<name>`` here as a namespaced
        alias; the prefix is stripped so ``openai-gpt-4o-mini`` asks
        the endpoint for ``gpt-4o-mini``.  Bare ``gpt-*`` names pass
        through untouched.
        """
        if model.startswith("openai-"):
            return model[len("openai-"):]
        return model
