"""The Gemini wire adapter (``generateContent`` shape).

``POST {base}/models/{model}:generateContent`` with the key in the
``x-goog-api-key`` header (never in the URL, so recordings and logs
stay secret-free); chat turns become ``contents`` with ``user``/
``model`` roles, system prompts ride in ``systemInstruction``, replies
carry ``candidates`` and ``usageMetadata``.

Registered for the ``gemini-`` model-name prefix.  The key comes from
``GEMINI_API_KEY`` (falling back to ``GOOGLE_API_KEY``);
``GEMINI_BASE_URL`` overrides the endpoint.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.llm.base import ChatMessage
from repro.llm.http import HTTPRequest
from repro.llm.providers.wire import WireProvider

class GeminiProvider(WireProvider):
    """Real Gemini ``generateContent`` backend over the shared transport."""

    name = "gemini"
    api_key_env = "GEMINI_API_KEY"
    base_url_env = "GEMINI_BASE_URL"
    default_base_url = "https://generativelanguage.googleapis.com/v1beta"

    def api_key(self) -> str:
        """``GEMINI_API_KEY`` with a ``GOOGLE_API_KEY`` fallback."""
        if not self._api_key and not os.environ.get(self.api_key_env):
            fallback = os.environ.get("GOOGLE_API_KEY")
            if fallback:
                return fallback
        return super().api_key()

    def build_request(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> HTTPRequest:
        """``POST /models/{model}:generateContent`` with role-mapped turns."""
        system, turns = self.split_system(messages)
        payload: dict = {
            "contents": [
                {
                    "role": "model" if message.role == "assistant" else "user",
                    "parts": [{"text": message.content}],
                }
                for message in turns
            ],
            "generationConfig": {"temperature": temperature},
        }
        if system:
            payload["systemInstruction"] = {"parts": [{"text": system}]}
        return HTTPRequest.json_request(
            "POST",
            f"{self.base_url}/models/{model}:generateContent",
            payload,
            {"x-goog-api-key": self.api_key()},
        )

    def parse_payload(self, payload: dict) -> tuple[str, int, int]:
        """First candidate's concatenated parts plus ``usageMetadata``."""
        candidate = payload["candidates"][0]
        text = "".join(
            part.get("text", "") for part in candidate["content"]["parts"]
        )
        usage = payload.get("usageMetadata", {})
        return (
            text,
            usage.get("promptTokenCount", 0),
            usage.get("candidatesTokenCount", 0),
        )
