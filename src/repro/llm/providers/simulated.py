"""The default provider: simulated GPT-class backends.

Wraps :class:`~repro.llm.simulated.SimulatedLLM` behind the
:class:`~repro.llm.providers.base.Provider` protocol.  Model instances are
shared with the owning client's ``models`` dict so ``client.resolve(name)``
and provider-routed completions observe the same backend object (and the
same per-prompt occurrence counters, which seed the noise RNG).

When the owning client carries a
:class:`~repro.llm.ratelimit.SimulatedRateLimit`, every completion is
checked against it first -- requests arriving faster than the configured
rate draw a :class:`~repro.errors.RateLimitError` (a simulated HTTP 429)
instead of a reply, exercising the scheduler's admission control and the
client's backoff path.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

from repro.llm.base import ChatMessage, CompletionResult, LanguageModel
from repro.llm.providers.base import ProviderBase
from repro.llm.simulated import SimulatedLLM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient


class SimulatedProvider(ProviderBase):
    """Serves any model name with a lazily created :class:`SimulatedLLM`."""

    name = "simulated"
    supports_async = False
    #: The simulated wire speaks a batched endpoint: one call, n
    #: completions, one rate-limit check -- what the scheduler's batch
    #: window exploits (and what the batching benchmarks measure).
    supports_batch = True
    max_batch_size = 16

    def __init__(self, client: "ChatClient") -> None:
        self._client = client
        self._create_lock = threading.Lock()
        #: Wire calls this provider served (batched calls count once);
        #: tests and benchmarks read it to prove batching collapsed
        #: n requests into fewer round-trips.
        self.wire_calls = 0
        self._wire_lock = threading.Lock()

    def _count_wire_call(self) -> None:
        with self._wire_lock:
            self.wire_calls += 1

    @property
    def deterministic(self) -> bool:  # type: ignore[override]
        """Same request, same reply -- only under a noise-free policy.

        With failure injection enabled, repeated identical prompts draw
        fresh noise (the per-prompt occurrence counter advances), so
        batch deduplication must treat them as independent samples.
        """
        policy = self._client.noise_policy
        return (
            policy is not None
            and policy.direct_corruption_rate == 0.0
            and policy.buggy_code_rate == 0.0
        )

    def language_model(self, model: str) -> LanguageModel:
        """The backend instance for ``model``, created on first use."""
        models = self._client.models
        if model not in models:
            with self._create_lock:
                if model not in models:
                    models[model] = SimulatedLLM(
                        model, policy=self._client.noise_policy
                    )
        return models[model]

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        self._count_wire_call()
        limit = self._client.rate_limit
        if limit is not None:
            # Arrival time is the caller's virtual "now": a caller that
            # charged its Retry-After wait has genuinely moved later on
            # the timeline, so honouring the hint always admits.
            limit.check(model, self._client.clock.now())
        return self.language_model(model).complete(messages, temperature)

    def batch_complete(
        self,
        model: str,
        message_lists: Sequence[Sequence[ChatMessage]],
        temperature: float,
    ) -> list[CompletionResult | Exception]:
        """One wire call, ``len(message_lists)`` completions.

        The whole batch draws *one* rate-limit check -- a refused batch
        raises before any item is served, like a real batched endpoint
        returning 429 for the request as a whole.  Per-item backend
        failures are captured in the item's slot instead of raised.
        """
        self._count_wire_call()
        limit = self._client.rate_limit
        if limit is not None:
            limit.check(model, self._client.clock.now())
        backend = self.language_model(model)
        results: list[CompletionResult | Exception] = []
        for messages in message_lists:
            try:
                results.append(backend.complete(messages, temperature))
            except Exception as error:
                results.append(error)
        return results


class RegisteredModelProvider(ProviderBase):
    """Adapter for a :class:`LanguageModel` registered by exact name.

    Keeps ``client.register(model)`` working unchanged: an explicitly
    registered backend takes precedence over any prefix-matched provider.
    """

    name = "registered-model"
    supports_async = False
    deterministic = False

    def __init__(self, model: LanguageModel) -> None:
        self._model = model

    def language_model(self, model: str) -> LanguageModel:
        return self._model

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        return self._model.complete(messages, temperature)
