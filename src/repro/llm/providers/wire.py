"""Shared machinery for real HTTP providers.

A wire provider is an adapter pair -- build the provider's request
shape, parse its response shape -- mounted on the shared transport
stack (:mod:`repro.llm.http`, :mod:`repro.llm.cassette`).  Everything
else is common and lives here:

* :class:`WirePolicy` -- how the network is reached.  Resolved from the
  environment by default: tier-1 never goes live (``REPRO_LIVE=1`` is
  the explicit opt-in), and a cassette directory
  (``REPRO_CASSETTE_DIR``) makes the identical code path hermetic by
  replaying recordings.
* :class:`WireProvider` -- the :class:`~repro.llm.providers.base.Provider`
  implementation: API-key resolution from environment variables,
  request/response plumbing through :class:`~repro.llm.http.HTTPClient`
  (which owns the error taxonomy, retries, and 429 mapping), usage
  accounting, and latency taken from the transport's measured (or
  recorded) round-trip so virtual clocks stay meaningful.

The seam to the rest of the stack is exactly the simulated provider's:
a 429 surfaces as :class:`~repro.errors.RateLimitError` with the
server's ``retry_after_s``, so the scheduler's requeue path, AIMD
window, and the naive-backoff fallback all apply unchanged to real
backends.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import AuthError, ConfigError, MalformedResponseError
from repro.llm.base import ChatMessage, CompletionResult, Usage
from repro.llm.cassette import CASSETTE_MODES, CassetteTransport
from repro.llm.http import (
    DEFAULT_TIMEOUT_S,
    HTTPClient,
    HTTPRequest,
    Transport,
    UrllibTransport,
)
from repro.llm.providers.base import ProviderBase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient

#: Environment flag that permits live network traffic (opt-in).
LIVE_ENV = "REPRO_LIVE"

#: Environment variable naming the cassette directory.
CASSETTE_DIR_ENV = "REPRO_CASSETTE_DIR"

#: Environment variable overriding the cassette mode.
CASSETTE_MODE_ENV = "REPRO_CASSETTE_MODE"

#: Placeholder credential used when replaying cassettes without a key
#: (credentials are redacted out of recordings and key derivation, so
#: replay runs never need the real secret).
REPLAY_PLACEHOLDER_KEY = "cassette-replay-placeholder"


def live_enabled(env: dict[str, str] | None = None) -> bool:
    """Whether the environment opts into real network traffic."""
    return (env if env is not None else os.environ).get(LIVE_ENV) == "1"


class WirePolicy:
    """How wire providers reach (or avoid) the network.

    ``None`` fields resolve from the environment at construction:
    ``REPRO_LIVE=1`` enables live traffic, ``REPRO_CASSETTE_DIR`` names
    the recording directory, and ``REPRO_CASSETTE_MODE`` forces a
    cassette mode.  The default cassette mode is ``auto`` when live
    (replay what exists, record what doesn't) and strict ``replay``
    otherwise -- so the hermetic configuration is the zero-setup one.

    With neither live mode nor a cassette directory, providers are
    *offline*: any attempted exchange raises a
    :class:`~repro.errors.TransportError` pointing at both opt-ins,
    which is what keeps tier-1 incapable of accidental network calls.
    """

    __slots__ = ("live", "cassette_dir", "cassette_mode", "timeout_s")

    def __init__(
        self,
        live: bool | None = None,
        cassette_dir: Path | str | None = None,
        cassette_mode: str | None = None,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        env: dict[str, str] | None = None,
    ) -> None:
        environ = env if env is not None else dict(os.environ)
        self.live = live_enabled(environ) if live is None else live
        if cassette_dir is None:
            from_env = environ.get(CASSETTE_DIR_ENV)
            cassette_dir = Path(from_env) if from_env else None
        self.cassette_dir = Path(cassette_dir) if cassette_dir is not None else None
        if cassette_mode is None:
            cassette_mode = environ.get(CASSETTE_MODE_ENV) or (
                "auto" if self.live else "replay"
            )
        if cassette_mode not in CASSETTE_MODES:
            raise ConfigError(
                f"cassette mode must be one of {CASSETTE_MODES}, "
                f"got {cassette_mode!r}"
            )
        self.cassette_mode = cassette_mode
        self.timeout_s = timeout_s

    def transport(self) -> Transport:
        """The transport this policy prescribes.

        Live + cassette records through the cassette; cassette alone
        replays strictly; live alone goes straight to the wire; neither
        yields an offline transport that fails with pointers to both
        opt-ins.
        """
        inner = UrllibTransport(self.timeout_s) if self.live else None
        if self.cassette_dir is not None:
            return CassetteTransport(
                self.cassette_dir, mode=self.cassette_mode, inner=inner
            )
        if inner is not None:
            return inner
        return _offline_transport

    def __repr__(self) -> str:
        where = str(self.cassette_dir) if self.cassette_dir else None
        return (
            f"WirePolicy(live={self.live}, cassette_dir={where!r}, "
            f"cassette_mode={self.cassette_mode!r})"
        )


def _offline_transport(request: HTTPRequest) -> Any:
    """The no-network default: every exchange fails with the opt-ins."""
    from repro.errors import TransportError
    from repro.llm.cassette import redact_url

    error = TransportError(
        f"wire providers are offline by default (attempted {request.method} "
        f"{redact_url(request.url)}); set {LIVE_ENV}=1 for live traffic or "
        f"point {CASSETTE_DIR_ENV} at a recorded cassette directory",
        url=redact_url(request.url),
    )
    error.retryable = False  # retrying an offline transport cannot help
    raise error


class WireProvider(ProviderBase):
    """Base class of the real HTTP chat providers.

    Subclasses define the adapter pair :meth:`build_request` /
    :meth:`parse_payload` plus their identity (``name``,
    ``api_key_env``, ``default_base_url``, ``base_url_env``); this base
    provides key/transport resolution and the complete() pipeline.

    Construction order for the transport: an explicit ``http`` client
    wins, then an explicit ``policy``, then the owning
    :class:`~repro.llm.client.ChatClient`'s ``wire_policy``, then the
    environment.  ``deterministic`` stays ``False``: hosted endpoints
    sample (cassette replays are deterministic, but the *provider
    contract* is what batch dedup consults, and claiming determinism
    would collapse distinct live samples).
    """

    name = "wire"
    supports_async = False
    deterministic = False
    # The HTTP chat endpoints serve one completion per request; the
    # scheduler's batch window never groups wire-provider traffic.
    supports_batch = False
    max_batch_size = 1

    #: Environment variable holding the API key (subclass sets).
    api_key_env = ""
    #: Environment variable overriding the endpoint base URL.
    base_url_env = ""
    #: Default endpoint base URL (subclass sets).
    default_base_url = ""

    def __init__(
        self,
        client: "ChatClient | None" = None,
        *,
        api_key: str | None = None,
        base_url: str | None = None,
        policy: WirePolicy | None = None,
        http: HTTPClient | None = None,
    ) -> None:
        if policy is None:
            policy = getattr(client, "wire_policy", None) or WirePolicy()
        self.policy = policy
        self._api_key = api_key
        self.base_url = (
            base_url
            or (os.environ.get(self.base_url_env) if self.base_url_env else None)
            or self.default_base_url
        ).rstrip("/")
        self.http = http or HTTPClient(
            policy.transport(), timeout_s=policy.timeout_s
        )

    # -- credentials --------------------------------------------------------

    def api_key(self) -> str:
        """The credential sent with live requests.

        Explicit key, else the provider's environment variable.  A
        missing key is an :class:`~repro.errors.AuthError` only when
        the policy is live; hermetic replay runs get a placeholder
        (recordings neither store nor key on credentials).
        """
        if self._api_key:
            return self._api_key
        from_env = os.environ.get(self.api_key_env, "") if self.api_key_env else ""
        if from_env:
            return from_env
        if self.policy.live:
            raise AuthError(
                f"provider {self.name!r} needs an API key: set "
                f"{self.api_key_env} (or pass api_key=...)",
            )
        return REPLAY_PLACEHOLDER_KEY

    # -- the adapter pair (subclass implements) ------------------------------

    def build_request(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> HTTPRequest:
        """Marshal one chat completion into the provider's wire shape."""
        raise NotImplementedError

    def parse_payload(self, payload: dict) -> tuple[str, int, int]:
        """Unmarshal a success body to ``(text, prompt_tokens, completion_tokens)``.

        Raise ``KeyError``/``IndexError``/``TypeError`` freely; the
        pipeline wraps them as
        :class:`~repro.errors.MalformedResponseError`.
        """
        raise NotImplementedError

    # -- Provider ------------------------------------------------------------

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """One wire round-trip mapped into a :class:`CompletionResult`."""
        request = self.build_request(model, messages, temperature)
        payload, response = self.http.send(request, model=model)
        try:
            text, prompt_tokens, completion_tokens = self.parse_payload(payload)
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise MalformedResponseError(
                f"{self.name} response for model {model!r} is missing the "
                f"fields its wire shape guarantees: {error!r}",
                url=request.url,
                cause=error,
            ) from error
        return CompletionResult(
            text,
            Usage(int(prompt_tokens), int(completion_tokens)),
            response.elapsed_s,
            model,
        )

    @staticmethod
    def split_system(
        messages: Sequence[ChatMessage],
    ) -> tuple[str, list[ChatMessage]]:
        """``(joined system text, non-system messages)`` -- the shape
        Anthropic and Gemini want system prompts in."""
        system = "\n\n".join(
            message.content for message in messages if message.role == "system"
        )
        rest = [message for message in messages if message.role != "system"]
        return system, rest

    def __repr__(self) -> str:
        return f"{type(self).__name__}(base_url={self.base_url!r}, {self.policy!r})"
