"""The ``Provider`` protocol: the seam between ``ChatClient`` and backends.

A provider owns everything behind one family of model names (``sim-*``,
``openai-stub-*``, ...): how a request is sent, how the reply maps back to
a :class:`~repro.llm.base.CompletionResult`, and whether the transport is
natively asynchronous.  ``ChatClient`` resolves a provider per model name
through the registry in :mod:`repro.llm.providers` -- third parties add
backends by registering a factory, never by editing the client.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.llm.base import ChatMessage, CompletionResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient


@runtime_checkable
class Provider(Protocol):
    """What a backend must offer to serve completions through ``ChatClient``.

    Capability flags:

    * ``supports_async`` -- the provider has a *native* ``acomplete``; when
      false the client runs ``complete`` on a worker thread instead.
    * ``deterministic`` -- same request, same reply (the simulated backend
      is; a hosted endpoint is not).  Batch deduplication consults this
      before sharing one in-flight result across identical prompts.
    """

    name: str
    supports_async: bool
    deterministic: bool

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """Serve one chat completion synchronously."""
        ...

    async def acomplete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """Serve one chat completion asynchronously."""
        ...


class ProviderBase:
    """Convenience base: sync providers inherit a thread-offloaded ``acomplete``."""

    name = "provider"
    supports_async = False
    deterministic = False

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        raise NotImplementedError

    async def acomplete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        return await asyncio.to_thread(self.complete, model, messages, temperature)
