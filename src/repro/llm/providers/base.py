"""The ``Provider`` protocol: the seam between ``ChatClient`` and backends.

A provider owns everything behind one family of model names (``sim-*``,
``openai-stub-*``, ...): how a request is sent, how the reply maps back to
a :class:`~repro.llm.base.CompletionResult`, and whether the transport is
natively asynchronous.  ``ChatClient`` resolves a provider per model name
through the registry in :mod:`repro.llm.providers` -- third parties add
backends by registering a factory, never by editing the client.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from repro.errors import RateLimitError, ServerError
from repro.llm.base import ChatMessage, CompletionResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient


@runtime_checkable
class Provider(Protocol):
    """What a backend must offer to serve completions through ``ChatClient``.

    Capability flags:

    * ``supports_async`` -- the provider has a *native* ``acomplete``; when
      false the client runs ``complete`` on a worker thread instead.
    * ``deterministic`` -- same request, same reply (the simulated backend
      is; a hosted endpoint is not).  Batch deduplication consults this
      before sharing one in-flight result across identical prompts.
    * ``supports_batch`` / ``max_batch_size`` -- the provider can serve
      several completions through one wire call (``batch_complete``).
      The scheduler's batch window groups compatible requests up to
      ``max_batch_size`` per call; providers without a batched endpoint
      leave ``supports_batch`` False and are never grouped.
    """

    name: str
    supports_async: bool
    deterministic: bool
    supports_batch: bool
    max_batch_size: int

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """Serve one chat completion synchronously."""
        ...

    async def acomplete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """Serve one chat completion asynchronously."""
        ...

    def batch_complete(
        self,
        model: str,
        message_lists: Sequence[Sequence[ChatMessage]],
        temperature: float,
    ) -> list[CompletionResult | Exception]:
        """Serve several completions through one wire call."""
        ...


class ProviderBase:
    """Convenience base: sync providers inherit a thread-offloaded ``acomplete``
    and a sequential ``batch_complete`` fallback."""

    name = "provider"
    supports_async = False
    deterministic = False
    #: Whether the backend has a *true* batched endpoint; the fallback
    #: below makes ``batch_complete`` callable either way, but only
    #: providers that set this are grouped by the scheduler.
    supports_batch = False
    #: Upper bound on items one ``batch_complete`` call accepts.
    max_batch_size = 1

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        raise NotImplementedError

    async def acomplete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        return await asyncio.to_thread(self.complete, model, messages, temperature)

    def batch_complete(
        self,
        model: str,
        message_lists: Sequence[Sequence[ChatMessage]],
        temperature: float,
    ) -> list[CompletionResult | Exception]:
        """Serve several completions in one call (sequential fallback).

        Returns one entry per item, in order: the item's
        :class:`CompletionResult`, or the exception that item drew --
        per-item failures never poison their batch-mates.  A failure of
        the *whole* call (a 429 rate limit, a 5xx) raises instead, so
        the scheduler can requeue every member.
        """
        results: list[CompletionResult | Exception] = []
        for messages in message_lists:
            try:
                results.append(self.complete(model, messages, temperature))
            except (RateLimitError, ServerError):
                raise
            except Exception as error:
                results.append(error)
        return results
