"""An OpenAI-shaped provider stub.

This provider speaks the ``chat.completions`` wire shape -- a request dict
with ``model``/``messages``/``temperature``, a response dict with
``choices`` and ``usage`` -- without any network or SDK.  It exists to
prove the provider seam: everything a real hosted adapter would do
(marshal the request, unmarshal the reply, account tokens) happens here
against a local responder, so swapping in the real OpenAI client is a
transport change only.

Tests register it under a prefix of their choosing via
:func:`repro.llm.providers.register_provider` to demonstrate third-party
backends without touching ``ChatClient``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.llm.base import ChatMessage, CompletionResult, Usage
from repro.llm.providers.base import ProviderBase
from repro.llm.tokenizer import count_tokens

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient

#: Seconds of simulated latency the stub reports per completion.
STUB_LATENCY_S = 0.01


def _echo_responder(request: dict[str, Any]) -> dict[str, Any]:
    """Default responder: acknowledge the last user message."""
    last = request["messages"][-1]["content"] if request["messages"] else ""
    text = f"[stub:{request['model']}] {last[:120]}"
    prompt_tokens = sum(
        count_tokens(message["content"]) + 4 for message in request["messages"]
    )
    return {
        "id": "chatcmpl-stub",
        "object": "chat.completion",
        "model": request["model"],
        "choices": [
            {
                "index": 0,
                "message": {"role": "assistant", "content": text},
                "finish_reason": "stop",
            }
        ],
        "usage": {
            "prompt_tokens": prompt_tokens,
            "completion_tokens": count_tokens(text),
        },
    }


class OpenAIStubProvider(ProviderBase):
    """OpenAI-wire-shaped provider with a pluggable local responder."""

    name = "openai-stub"
    supports_async = True
    deterministic = True

    def __init__(
        self,
        client: "ChatClient | None" = None,
        responder: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
    ) -> None:
        # ``client`` is accepted (and ignored) so the class itself can be
        # passed to register_provider as a factory.
        self._responder = responder or _echo_responder

    # -- wire marshalling ---------------------------------------------------

    @staticmethod
    def build_request(
        model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> dict[str, Any]:
        return {
            "model": model,
            "temperature": temperature,
            "messages": [
                {"role": message.role, "content": message.content}
                for message in messages
            ],
        }

    @staticmethod
    def parse_response(response: dict[str, Any]) -> CompletionResult:
        choice = response["choices"][0]
        usage = response.get("usage", {})
        return CompletionResult(
            choice["message"]["content"],
            Usage(
                usage.get("prompt_tokens", 0),
                usage.get("completion_tokens", 0),
            ),
            STUB_LATENCY_S,
            response["model"],
        )

    # -- Provider -----------------------------------------------------------

    def complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        request = self.build_request(model, messages, temperature)
        return self.parse_response(self._responder(request))

    async def acomplete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        # Native async path: no thread hop, the responder is local.
        return self.complete(model, messages, temperature)
