"""The Anthropic wire adapter (Messages API shape).

``POST {base}/v1/messages`` with ``x-api-key``/``anthropic-version``
headers; system prompts ride in the dedicated ``system`` field, replies
carry a ``content`` block list and ``usage`` with
``input_tokens``/``output_tokens``.

Registered for the ``claude-`` model-name prefix.  The key comes from
``ANTHROPIC_API_KEY``; ``ANTHROPIC_BASE_URL`` overrides the endpoint.
"""

from __future__ import annotations

from typing import Sequence

from repro.llm.base import ChatMessage
from repro.llm.http import HTTPRequest
from repro.llm.providers.wire import WireProvider

#: The Messages API requires an explicit completion budget.
DEFAULT_MAX_TOKENS = 1024

#: Pinned wire protocol version (the API requires the header).
ANTHROPIC_VERSION = "2023-06-01"


class AnthropicProvider(WireProvider):
    """Real Anthropic Messages backend over the shared transport."""

    name = "anthropic"
    api_key_env = "ANTHROPIC_API_KEY"
    base_url_env = "ANTHROPIC_BASE_URL"
    default_base_url = "https://api.anthropic.com"

    #: Completion budget sent as ``max_tokens`` (the API mandates one).
    max_tokens = DEFAULT_MAX_TOKENS

    def build_request(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> HTTPRequest:
        """``POST /v1/messages`` with system text split out of the turns."""
        system, turns = self.split_system(messages)
        payload = {
            "model": model,
            "max_tokens": self.max_tokens,
            "temperature": temperature,
            "messages": [
                {"role": message.role, "content": message.content}
                for message in turns
            ],
        }
        if system:
            payload["system"] = system
        return HTTPRequest.json_request(
            "POST",
            f"{self.base_url}/v1/messages",
            payload,
            {
                "x-api-key": self.api_key(),
                "anthropic-version": ANTHROPIC_VERSION,
            },
        )

    def parse_payload(self, payload: dict) -> tuple[str, int, int]:
        """Concatenated text blocks plus input/output token usage."""
        text = "".join(
            block["text"]
            for block in payload["content"]
            if block.get("type") == "text"
        )
        usage = payload.get("usage", {})
        return (
            text,
            usage.get("input_tokens", 0),
            usage.get("output_tokens", 0),
        )
