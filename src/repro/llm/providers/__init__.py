"""The provider registry: model-name prefixes to backend factories.

``ChatClient`` asks :func:`resolve_factory` for the factory owning a model
name; the longest registered prefix wins, and names matching no prefix
fall back to the simulated provider (so ``sim-gpt-4`` and any ad-hoc
model name behave exactly as before the registry existed).

A factory is any ``callable(client) -> Provider``; provider classes whose
``__init__`` takes the owning client (or ignores it) can be registered
directly.  Registration is process-global and thread-safe::

    from repro.llm.providers import register_provider
    register_provider("acme-", AcmeProvider)

    ask(t.str, "...", config=Config(model="acme-large"))
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigError
from repro.llm.providers.anthropic import AnthropicProvider
from repro.llm.providers.base import Provider, ProviderBase
from repro.llm.providers.gemini import GeminiProvider
# OpenAIStubProvider historically lived in a separate openai_stub
# module; it is now defined alongside the canonical adapter.
from repro.llm.providers.openai import OpenAIProvider, OpenAIStubProvider
from repro.llm.providers.simulated import RegisteredModelProvider, SimulatedProvider
from repro.llm.providers.wire import WirePolicy, WireProvider

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.client import ChatClient

ProviderFactory = Callable[["ChatClient"], Provider]

_LOCK = threading.Lock()
_FACTORIES: dict[str, ProviderFactory] = {}

#: Prefix of the built-in simulated models; also the fallback for names
#: matching no registered prefix.
SIMULATED_PREFIX = "sim-"

#: The fallback factory used when no registered prefix matches.
DEFAULT_FACTORY: ProviderFactory = SimulatedProvider


def register_provider(
    prefix: str, factory: ProviderFactory, *, replace: bool = False
) -> None:
    """Route model names starting with ``prefix`` to ``factory``.

    Raises :class:`ConfigError` on an empty prefix or a duplicate
    registration unless ``replace`` is set.
    """
    if not prefix:
        raise ConfigError("provider prefix must be a non-empty string")
    with _LOCK:
        if prefix in _FACTORIES and not replace:
            raise ConfigError(
                f"a provider is already registered for prefix {prefix!r} "
                "(pass replace=True to override)"
            )
        _FACTORIES[prefix] = factory


def unregister_provider(prefix: str) -> bool:
    """Remove a registration; returns whether it existed."""
    with _LOCK:
        return _FACTORIES.pop(prefix, None) is not None


def registered_prefixes() -> tuple[str, ...]:
    """Currently registered prefixes, longest first."""
    with _LOCK:
        return tuple(sorted(_FACTORIES, key=len, reverse=True))


def resolve_factory(model: str) -> tuple[str, ProviderFactory]:
    """The ``(prefix, factory)`` serving ``model``.

    Longest matching prefix wins; unmatched names get the simulated
    fallback under the pseudo-prefix ``""``.
    """
    with _LOCK:
        best = ""
        for prefix in _FACTORIES:
            if model.startswith(prefix) and len(prefix) > len(best):
                best = prefix
        if best:
            return best, _FACTORIES[best]
    return "", DEFAULT_FACTORY


register_provider(SIMULATED_PREFIX, SimulatedProvider)

#: The real-wire adapters pre-registered by model-name prefix.  Hermetic
#: by default: without ``REPRO_LIVE=1`` or a ``REPRO_CASSETTE_DIR``
#: these providers refuse every exchange with a pointer at both opt-ins,
#: so merely routing a ``gpt-``/``claude-``/``gemini-`` model name can
#: never cause network traffic.
WIRE_PROVIDERS: dict[str, ProviderFactory] = {
    "gpt-": OpenAIProvider,
    "openai-": OpenAIProvider,
    "claude-": AnthropicProvider,
    "gemini-": GeminiProvider,
}
for _prefix, _factory in WIRE_PROVIDERS.items():
    register_provider(_prefix, _factory)
del _prefix, _factory

__all__ = [
    "Provider",
    "ProviderBase",
    "ProviderFactory",
    "SimulatedProvider",
    "RegisteredModelProvider",
    "OpenAIStubProvider",
    "OpenAIProvider",
    "AnthropicProvider",
    "GeminiProvider",
    "WireProvider",
    "WirePolicy",
    "WIRE_PROVIDERS",
    "register_provider",
    "unregister_provider",
    "registered_prefixes",
    "resolve_factory",
    "SIMULATED_PREFIX",
    "DEFAULT_FACTORY",
]
