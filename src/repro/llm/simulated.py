"""The simulated language model.

``SimulatedLLM`` honours the same contract as a hosted chat model: it
receives prompt *text* and returns response *text*.  Internally it
re-parses the prompt (Listing 2 / Figure 4 shapes), consults the
knowledge base, and renders a reply -- JSON in a fenced block for direct
answers, a completed function in a fenced block for code generation --
with deterministic failure injection so AskIt's validation and retry
machinery is exercised end to end.

Substitution note (see DESIGN.md): this class replaces OpenAI GPT-3.5 /
GPT-4.  Every byte that crosses the boundary is text; nothing structured
leaks around the prompt.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Sequence

from repro.llm import noise as noise_mod
from repro.llm.base import ChatMessage, CompletionResult, LanguageModel, Usage
from repro.llm.knowledge import KnowledgeBase, global_knowledge, mask_quantities
from repro.llm.latency import profile_for
from repro.llm.noise import NoisePolicy
from repro.llm.requests import (
    CodegenRequest,
    DirectRequest,
    classify_prompt,
    parse_codegen_request,
    parse_direct_request,
)
from repro.llm.solvers.mathword import is_uncodable_family, solve_word_problem
from repro.llm.solvers.worldly import solve_worldly
from repro.llm.synthesis.emitters import (
    complete_python_stub,
    complete_typescript_stub,
    wrap_code_response,
)
from repro.llm.synthesis.wordmath import emit_python_body, emit_typescript_body, match_family
from repro.llm.tokenizer import count_tokens
from repro.prompts.codegen import PYTHON
from repro.types.examples import example_value


class SimulatedLLM(LanguageModel):
    """A deterministic, seeded stand-in for a GPT-class chat model."""

    def __init__(
        self,
        name: str = "sim-gpt-4",
        knowledge: KnowledgeBase | None = None,
        policy: NoisePolicy | None = None,
    ) -> None:
        self.name = name
        self._knowledge = knowledge
        self.policy = policy or NoisePolicy()
        self.call_count = 0
        # Per-prompt occurrence counts seed the noise RNG: identical runs
        # stay reproducible even when calls for *different* prompts are
        # issued concurrently in scheduler-dependent order (each prompt's
        # own retries are sequential, so its counter is deterministic).
        # Keyed by prompt digest, not prompt text, so a long-lived model
        # retains a few dozen bytes per distinct prompt rather than the
        # prompt itself.
        self._prompt_counts: dict[bytes, int] = {}
        self._count_lock = threading.Lock()

    @property
    def knowledge(self) -> KnowledgeBase:
        return self._knowledge if self._knowledge is not None else global_knowledge()

    # -- LanguageModel ------------------------------------------------------

    def complete(
        self, messages: Sequence[ChatMessage], temperature: float = 1.0
    ) -> CompletionResult:
        if not messages:
            raise ValueError("complete() needs at least one message")
        prompt = messages[-1].content
        digest = hashlib.sha256(prompt.encode()).digest()
        with self._count_lock:
            self.call_count += 1
            occurrence = self._prompt_counts.get(digest, 0) + 1
            self._prompt_counts[digest] = occurrence
        rng = self.policy.rng_for(prompt, occurrence if temperature > 0 else 0)

        kind = classify_prompt(prompt)
        if kind == "direct":
            text = self._handle_direct(prompt, rng)
        elif kind == "codegen":
            text = self._handle_codegen(prompt, rng)
        else:
            text = self._handle_chat(prompt)

        prompt_tokens = sum(count_tokens(message.content) + 4 for message in messages)
        completion_tokens = count_tokens(text)
        latency = profile_for(self.name).latency(
            prompt_tokens, completion_tokens, rng.uniform(-1.0, 1.0)
        )
        return CompletionResult(text, Usage(prompt_tokens, completion_tokens), latency, self.name)

    # -- direct answers --------------------------------------------------------

    def _handle_direct(self, prompt: str, rng) -> str:
        request = parse_direct_request(prompt)
        value, reason = self._answer(request)

        attempt = 1 if request.is_feedback else 0
        corruption = self.policy.direct_corruption(rng, attempt)
        payload = json.dumps({"reason": reason, "answer": value})

        if corruption == noise_mod.DROP_FENCE:
            return (
                f"{reason} So the answer is {self._inline(value)}. "
                "Let me know if you need anything else!"
            )
        if corruption == noise_mod.MISSING_ANSWER:
            body = json.dumps({"reason": reason, "result": value})
            return f"```json\n{body}\n```\n"
        if corruption == noise_mod.WRONG_TYPE:
            wrong: Any = json.dumps(value) if not isinstance(value, str) else 12345
            body = json.dumps({"reason": reason, "answer": wrong})
            return f"```json\n{body}\n```\n"
        return f"```json\n{payload}\n```\n"

    @staticmethod
    def _inline(value: Any) -> str:
        if isinstance(value, str):
            return value
        return str(value)

    def _answer(self, request: DirectRequest) -> tuple[Any, str]:
        """Compute the answer value and a chain-of-thought string."""
        # 1. Word problems (GSM8K-style).
        word = solve_word_problem(self.knowledge, request.task_with_values())
        if word is not None:
            return word.value, word.reason

        # 2. Tasks the model knows how to perform (the coding catalog
        #    doubles as direct competence: sorting, factorials, ...).
        implementation = self.knowledge.find_task(request.task)
        if implementation is not None:
            try:
                value = implementation.python_fn(**request.bindings)
                return value, f"Performed the task '{request.task}' step by step."
            except Exception:  # noqa: BLE001 - model falls back to guessing
                pass

        # 3. Open-domain abilities.
        matched, value = solve_worldly(request.task, request.bindings)
        if matched:
            return value, "Assessed the request and derived the result."

        # 4. Fallback: a type-conforming guess, exactly what a pressed
        #    model does when it does not know.
        guess = example_value(request.answer_type)
        return guess, "I am not certain; providing my best guess in the required format."

    # -- code generation -------------------------------------------------------

    def _handle_codegen(self, prompt: str, rng) -> str:
        request = parse_codegen_request(prompt)
        attempt = 1 if request.is_feedback else 0
        body = self._codegen_body(request, rng, attempt)
        if request.language == PYTHON:
            code = complete_python_stub(request.stub, body)
        else:
            code = complete_typescript_stub(request.stub, body)
        return wrap_code_response(request.language, code)

    def _codegen_body(self, request: CodegenRequest, rng, attempt: int) -> str:
        knowledge = self.knowledge

        # Word-problem families (the GSM8K codegen path).
        matched = match_family(knowledge, request.task)
        if matched is not None:
            family, slot_names = matched
            skeleton, _ = mask_quantities(request.task)
            persistent_failure = is_uncodable_family(skeleton)
            buggy = persistent_failure or self.policy.code_is_buggy(rng, attempt)
            if request.language == PYTHON:
                return emit_python_body(family.expression, slot_names, wrong=buggy)
            return emit_typescript_body(family.expression, slot_names, wrong=buggy)

        # Catalog tasks.
        implementation = knowledge.find_task(request.task)
        if implementation is not None:
            if request.language == PYTHON:
                if implementation.python_signature_mismatch:
                    # Persistent: with no parameter types in the prompt the
                    # model keeps assuming the wrong representation.
                    return implementation.python_body
                if implementation.buggy_python_body and self.policy.code_is_buggy(rng, attempt):
                    return implementation.buggy_python_body
                return implementation.python_body
            if implementation.buggy_ts_body and self.policy.code_is_buggy(rng, attempt):
                return implementation.buggy_ts_body
            return implementation.ts_body

        # Unknown task: emit an honest failure body.
        if request.language == PYTHON:
            return 'raise NotImplementedError("I do not know how to implement this task")'
        return "throw new Error('I do not know how to implement this task');"

    # -- chat fallback -----------------------------------------------------------

    def _handle_chat(self, prompt: str) -> str:
        return (
            "I can help with programming tasks. Please provide a typed AskIt "
            "request so I can answer in the expected format."
        )
