"""Abstract chat-completion interface.

Everything above this layer (the AskIt runtime and compiler) talks to a
:class:`LanguageModel` through plain text -- exactly the contract a real
OpenAI-style endpoint offers.  Swapping the simulated backend for a real
one requires implementing a single method.
"""

from __future__ import annotations

import asyncio
from typing import Sequence


class ChatMessage:
    """One message of a chat conversation."""

    __slots__ = ("role", "content")

    ROLES = ("system", "user", "assistant")

    def __init__(self, role: str, content: str) -> None:
        if role not in self.ROLES:
            raise ValueError(f"unknown chat role {role!r}")
        self.role = role
        self.content = content

    def __repr__(self) -> str:
        return f"ChatMessage({self.role!r}, {len(self.content)} chars)"


def user_message(content: str) -> ChatMessage:
    return ChatMessage("user", content)


class Usage:
    """Token accounting for one completion."""

    __slots__ = ("prompt_tokens", "completion_tokens")

    def __init__(self, prompt_tokens: int, completion_tokens: int) -> None:
        self.prompt_tokens = prompt_tokens
        self.completion_tokens = completion_tokens

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def __repr__(self) -> str:
        return f"Usage(prompt={self.prompt_tokens}, completion={self.completion_tokens})"


class CompletionResult:
    """The model's reply plus bookkeeping.

    ``latency_s`` is *simulated* wall-clock time on a virtual clock -- the
    time a comparable hosted model would have taken -- so experiments can
    report realistic latencies without sleeping.

    ``cached`` marks replays served by the response cache
    (:mod:`repro.core.response_cache`); such results carry zero latency
    and are excluded from provider-call accounting.
    """

    __slots__ = ("text", "usage", "latency_s", "model", "cached")

    def __init__(
        self,
        text: str,
        usage: Usage,
        latency_s: float,
        model: str,
        cached: bool = False,
    ) -> None:
        self.text = text
        self.usage = usage
        self.latency_s = latency_s
        self.model = model
        self.cached = cached

    def __repr__(self) -> str:
        origin = ", cached" if self.cached else ""
        return f"CompletionResult({self.model}, {self.latency_s:.2f}s, {self.usage!r}{origin})"


class LanguageModel:
    """Abstract chat-completion model."""

    name: str = "abstract"

    def complete(self, messages: Sequence[ChatMessage], temperature: float = 1.0) -> CompletionResult:
        """Generate a completion for a conversation."""
        raise NotImplementedError

    async def acomplete(
        self, messages: Sequence[ChatMessage], temperature: float = 1.0
    ) -> CompletionResult:
        """Async completion; defaults to running :meth:`complete` on a
        worker thread so sync-only backends stay event-loop friendly."""
        return await asyncio.to_thread(self.complete, messages, temperature)
