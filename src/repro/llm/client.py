"""OpenAI-shaped chat client.

AskIt's runtime and compiler talk to this client the way the paper's
implementation talks to the OpenAI API: a model name, a message list, a
temperature.  The client resolves model names to backends (simulated by
default), charges simulated latency to a virtual clock, and keeps usage
statistics that the experiments report.
"""

from __future__ import annotations

from typing import Sequence

from repro.llm.base import ChatMessage, CompletionResult, LanguageModel, user_message
from repro.llm.latency import VirtualClock
from repro.llm.noise import NoisePolicy
from repro.llm.simulated import SimulatedLLM
from repro.llm.transcript import TranscriptRecorder


class ClientStats:
    """Aggregate usage across all calls made through one client."""

    def __init__(self) -> None:
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0

    def record(self, result: CompletionResult) -> None:
        self.calls += 1
        self.prompt_tokens += result.usage.prompt_tokens
        self.completion_tokens += result.usage.completion_tokens

    def __repr__(self) -> str:
        return (
            f"ClientStats(calls={self.calls}, prompt_tokens={self.prompt_tokens}, "
            f"completion_tokens={self.completion_tokens})"
        )


class ChatClient:
    """Routes chat completions to named models and accounts for time."""

    def __init__(
        self,
        models: dict[str, LanguageModel] | None = None,
        clock: VirtualClock | None = None,
        noise_policy: NoisePolicy | None = None,
        recorder: "TranscriptRecorder | None" = None,
    ) -> None:
        self.models: dict[str, LanguageModel] = dict(models or {})
        self.clock = clock or VirtualClock()
        self.noise_policy = noise_policy
        self.stats = ClientStats()
        #: Optional transcript recorder (off by default; see
        #: :mod:`repro.llm.transcript`).
        self.recorder = recorder

    def resolve(self, name: str) -> LanguageModel:
        """The backend for ``name``; simulated backends are created lazily."""
        if name not in self.models:
            self.models[name] = SimulatedLLM(name, policy=self.noise_policy)
        return self.models[name]

    def register(self, model: LanguageModel) -> None:
        self.models[model.name] = model

    def chat_complete(
        self,
        model: str,
        messages: Sequence[ChatMessage] | str,
        temperature: float = 1.0,
    ) -> CompletionResult:
        """Complete a conversation; a bare string is wrapped as one user
        message (the shape AskIt's prompts use)."""
        if isinstance(messages, str):
            messages = [user_message(messages)]
        backend = self.resolve(model)
        result = backend.complete(messages, temperature)
        self.clock.charge(result.latency_s)
        self.stats.record(result)
        if self.recorder is not None:
            self.recorder.record(model, messages, result)
        return result


_DEFAULT_CLIENT: ChatClient | None = None


def default_client() -> ChatClient:
    """The process-wide client used when no explicit client is configured."""
    global _DEFAULT_CLIENT
    if _DEFAULT_CLIENT is None:
        _DEFAULT_CLIENT = ChatClient()
    return _DEFAULT_CLIENT


def reset_default_client() -> None:
    """Discard the process-wide client (tests use this for isolation)."""
    global _DEFAULT_CLIENT
    _DEFAULT_CLIENT = None
