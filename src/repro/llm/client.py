"""OpenAI-shaped chat client.

AskIt's runtime and compiler talk to this client the way the paper's
implementation talks to the OpenAI API: a model name, a message list, a
temperature.  The client resolves model names to providers through the
registry in :mod:`repro.llm.providers` (simulated by default), charges
simulated latency to a virtual clock, and keeps usage statistics that the
experiments report.

The client is thread-safe: ``Session.map``/``run_parallel`` issue
completions from a worker pool, and stats, clock, and transcript all
account correctly under concurrency.
"""

from __future__ import annotations

import asyncio
import threading
from typing import TYPE_CHECKING, Sequence

from repro.llm.base import ChatMessage, CompletionResult, LanguageModel, user_message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports llm)
    from repro.core.response_cache import ResponseCache
from repro.llm.latency import VirtualClock
from repro.llm.noise import NoisePolicy
from repro.llm.providers import (
    Provider,
    RegisteredModelProvider,
    resolve_factory,
)
from repro.llm.transcript import TranscriptRecorder


class ModelStats:
    """Usage accumulated for one model name.

    ``calls`` counts *provider* calls only; requests served without
    touching the provider show up as ``cache_hits`` (replayed from the
    response cache) or ``coalesced`` (shared a concurrent identical
    request's call).  ``cache_misses`` counts provider calls made with a
    cache consulted first, so ``cache_hits / (cache_hits + cache_misses)``
    is the hit rate of cache-enabled traffic.
    """

    __slots__ = (
        "calls",
        "prompt_tokens",
        "completion_tokens",
        "cache_hits",
        "cache_misses",
        "coalesced",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def __repr__(self) -> str:
        return (
            f"ModelStats(calls={self.calls}, prompt_tokens={self.prompt_tokens}, "
            f"completion_tokens={self.completion_tokens}, "
            f"hits={self.cache_hits}, misses={self.cache_misses}, "
            f"coalesced={self.coalesced})"
        )


class ClientStats:
    """Aggregate usage across all calls made through one client.

    Accumulation is lock-protected so concurrent ``map()`` workers never
    lose updates; ``per_model`` breaks the totals down by model name and
    ``reset()`` zeroes everything (e.g. between experiment phases).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        self._per_model: dict[str, ModelStats] = {}

    def record(self, result: CompletionResult) -> None:
        with self._lock:
            self.calls += 1
            self.prompt_tokens += result.usage.prompt_tokens
            self.completion_tokens += result.usage.completion_tokens
            model = self._per_model.setdefault(result.model, ModelStats())
            model.calls += 1
            model.prompt_tokens += result.usage.prompt_tokens
            model.completion_tokens += result.usage.completion_tokens

    def record_cache(self, model: str, status: str) -> None:
        """Count one response-cache outcome for ``model``.

        ``status`` is ``"hit"``, ``"miss"``, or ``"coalesced"`` (the
        values :meth:`ResponseCache.fetch
        <repro.core.response_cache.ResponseCache.fetch>` returns).  A
        miss still triggers a normal :meth:`record` for the provider
        call that follows; hits and coalesced replays never do.
        """
        with self._lock:
            per_model = self._per_model.setdefault(model, ModelStats())
            if status == "hit":
                self.cache_hits += 1
                per_model.cache_hits += 1
            elif status == "coalesced":
                self.coalesced += 1
                per_model.coalesced += 1
            elif status == "miss":
                self.cache_misses += 1
                per_model.cache_misses += 1
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown cache status {status!r}")

    @staticmethod
    def _copy(live: ModelStats) -> ModelStats:
        snapshot = ModelStats()
        snapshot.calls = live.calls
        snapshot.prompt_tokens = live.prompt_tokens
        snapshot.completion_tokens = live.completion_tokens
        snapshot.cache_hits = live.cache_hits
        snapshot.cache_misses = live.cache_misses
        snapshot.coalesced = live.coalesced
        return snapshot

    @property
    def per_model(self) -> dict[str, ModelStats]:
        """A consistent snapshot of the per-model breakdown.

        Copied under the lock, so iterating it while batch workers record
        concurrently is safe (the live dict is never exposed).
        """
        with self._lock:
            return {name: self._copy(live) for name, live in self._per_model.items()}

    def for_model(self, name: str) -> ModelStats:
        """A snapshot of one model's usage (zeros if never called)."""
        with self._lock:
            live = self._per_model.get(name)
            return self._copy(live) if live is not None else ModelStats()

    def reset(self) -> None:
        with self._lock:
            self.calls = 0
            self.prompt_tokens = 0
            self.completion_tokens = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.coalesced = 0
            self._per_model = {}

    def __repr__(self) -> str:
        cache = ""
        if self.cache_hits or self.cache_misses or self.coalesced:
            cache = (
                f", hits={self.cache_hits}, misses={self.cache_misses}, "
                f"coalesced={self.coalesced}"
            )
        return (
            f"ClientStats(calls={self.calls}, prompt_tokens={self.prompt_tokens}, "
            f"completion_tokens={self.completion_tokens}{cache})"
        )


class ChatClient:
    """Routes chat completions to providers and accounts for time.

    Model names resolve to providers by longest registered prefix
    (:func:`repro.llm.providers.register_provider`); names matching no
    prefix get the simulated backend, and a :class:`LanguageModel`
    registered by exact name via :meth:`register` takes precedence over
    any prefix.
    """

    def __init__(
        self,
        models: dict[str, LanguageModel] | None = None,
        clock: VirtualClock | None = None,
        noise_policy: NoisePolicy | None = None,
        recorder: "TranscriptRecorder | None" = None,
    ) -> None:
        self.models: dict[str, LanguageModel] = dict(models or {})
        self.clock = clock or VirtualClock()
        self.noise_policy = noise_policy
        self.stats = ClientStats()
        #: Optional transcript recorder (off by default; see
        #: :mod:`repro.llm.transcript`).
        self.recorder = recorder
        self._providers: dict[str, Provider] = {}
        # Adapters for models registered by exact name via register();
        # these shadow prefix routing.  Backends a provider lazily caches
        # in ``models`` (the simulated family) never appear here.
        self._exact: dict[str, RegisteredModelProvider] = {
            name: RegisteredModelProvider(model)
            for name, model in self.models.items()
        }
        self._lock = threading.Lock()
        self._recorder_lock = threading.Lock()

    def provider_for(self, model: str) -> Provider:
        """The provider serving ``model`` (instantiated once per client)."""
        adapter = self._exact.get(model)
        if adapter is not None:
            return adapter
        prefix, factory = resolve_factory(model)
        provider = self._providers.get(prefix)
        if provider is not None:
            return provider
        # Instantiate outside the lock: factories receive the owning
        # client and may legitimately call back into it (e.g. to wrap
        # another provider).  A racing duplicate is discarded.
        created = factory(self)
        with self._lock:
            return self._providers.setdefault(prefix, created)

    def resolve(self, name: str) -> LanguageModel:
        """The backend for ``name``; simulated backends are created lazily.

        Only providers that expose per-name ``language_model`` objects (the
        simulated family and exact-name registrations) can be resolved this
        way; wire-level providers serve completions without one.
        """
        provider = self.provider_for(name)
        language_model = getattr(provider, "language_model", None)
        if language_model is None:
            raise LookupError(
                f"provider {provider.name!r} for model {name!r} does not "
                "expose a LanguageModel; call chat_complete instead"
            )
        return language_model(name)

    def register(self, model: LanguageModel) -> None:
        self.models[model.name] = model
        self._exact[model.name] = RegisteredModelProvider(model)

    def chat_complete(
        self,
        model: str,
        messages: Sequence[ChatMessage] | str,
        temperature: float = 1.0,
        cache: "ResponseCache | None" = None,
    ) -> CompletionResult:
        """Complete a conversation; a bare string is wrapped as one user
        message (the shape AskIt's prompts use).

        When ``cache`` (a :class:`~repro.core.response_cache.ResponseCache`)
        is given, the request is served through it: a stored entry replays
        with zero latency, a concurrent identical request coalesces onto
        one provider call, and only true misses reach the provider (and
        get persisted in read-write mode).  Hit/miss/coalesced outcomes
        are tallied on :attr:`stats`.
        """
        messages = self._as_messages(messages)
        if cache is None:
            result = self.provider_for(model).complete(model, messages, temperature)
            self._account(model, messages, result)
            return result
        status, result = cache.fetch(
            model,
            messages,
            temperature,
            lambda: self.provider_for(model).complete(model, messages, temperature),
        )
        self._settle_cached(model, messages, status, result)
        return result

    async def achat_complete(
        self,
        model: str,
        messages: Sequence[ChatMessage] | str,
        temperature: float = 1.0,
        cache: "ResponseCache | None" = None,
    ) -> CompletionResult:
        """Async counterpart of :meth:`chat_complete`.

        Uses the provider's native async path when it has one; otherwise
        the sync ``complete`` runs on a worker thread so the event loop
        never blocks.  ``cache`` behaves exactly as in
        :meth:`chat_complete`; coalesced followers await the leader
        without blocking the loop.
        """
        messages = self._as_messages(messages)
        if cache is None:
            result = await self._acomplete_provider(model, messages, temperature)
            self._account(model, messages, result)
            return result
        status, result = await cache.afetch(
            model,
            messages,
            temperature,
            lambda: self._acomplete_provider(model, messages, temperature),
        )
        self._settle_cached(model, messages, status, result)
        return result

    async def _acomplete_provider(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        provider = self.provider_for(model)
        if provider.supports_async:
            return await provider.acomplete(model, messages, temperature)
        return await asyncio.to_thread(provider.complete, model, messages, temperature)

    def _settle_cached(
        self,
        model: str,
        messages: Sequence[ChatMessage],
        status: str,
        result: CompletionResult,
    ) -> None:
        """Account one cache-served request: misses charge, replays don't."""
        self.stats.record_cache(model, status)
        if status == "miss":
            self._account(model, messages, result)

    @staticmethod
    def _as_messages(messages: Sequence[ChatMessage] | str) -> Sequence[ChatMessage]:
        if isinstance(messages, str):
            return [user_message(messages)]
        return messages

    def _account(
        self, model: str, messages: Sequence[ChatMessage], result: CompletionResult
    ) -> None:
        self.clock.charge(result.latency_s)
        self.stats.record(result)
        if self.recorder is not None:
            # Dedicated lock: a slow recorder must not block provider
            # resolution for concurrent batch workers.
            with self._recorder_lock:
                self.recorder.record(model, messages, result)


_DEFAULT_CLIENT: ChatClient | None = None


def default_client() -> ChatClient:
    """The process-wide client used when no explicit client is configured."""
    global _DEFAULT_CLIENT
    if _DEFAULT_CLIENT is None:
        _DEFAULT_CLIENT = ChatClient()
    return _DEFAULT_CLIENT


def reset_default_client() -> None:
    """Discard the process-wide client (tests use this for isolation)."""
    global _DEFAULT_CLIENT
    _DEFAULT_CLIENT = None
