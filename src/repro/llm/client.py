"""OpenAI-shaped chat client.

AskIt's runtime and compiler talk to this client the way the paper's
implementation talks to the OpenAI API: a model name, a message list, a
temperature.  The client resolves model names to providers through the
registry in :mod:`repro.llm.providers` (simulated by default), charges
simulated latency to a virtual clock, and keeps usage statistics that the
experiments report.

The client is thread-safe: ``Session.map``/``run_parallel`` issue
completions from a worker pool, and stats, clock, and transcript all
account correctly under concurrency.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Callable, ContextManager, Sequence

from repro.errors import RateLimitError
from repro.llm.base import ChatMessage, CompletionResult, LanguageModel, user_message
from repro.llm.providers.wire import WirePolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports llm)
    from repro.core.response_cache import ResponseCache
    from repro.core.scheduler import RequestScheduler
    from repro.obs.telemetry import Telemetry
from repro.llm.latency import VirtualClock
from repro.llm.noise import NoisePolicy
from repro.llm.providers import (
    Provider,
    RegisteredModelProvider,
    resolve_factory,
)
from repro.llm.ratelimit import SimulatedRateLimit
from repro.llm.transcript import TranscriptRecorder

#: Retries the *unscheduled* path grants a rate-limited request (the
#: scheduler has its own requeue budget; see ``SchedulerPolicy``).
RATE_LIMIT_MAX_ATTEMPTS = 8

#: The naive backoff multiplies the provider's ``retry_after_s`` hint by
#: this factor per successive refusal of one request -- the standard
#: exponential backoff a client without admission control falls back to.
RATE_LIMIT_BACKOFF_BASE = 2.0


class ModelStats:
    """Usage accumulated for one model name.

    ``calls`` counts *provider* calls only; requests served without
    touching the provider show up as ``cache_hits`` (replayed from the
    response cache) or ``coalesced`` (shared a concurrent identical
    request's call).  ``cache_misses`` counts provider calls made with a
    cache consulted first, so ``cache_hits / (cache_hits + cache_misses)``
    is the hit rate of cache-enabled traffic.
    """

    __slots__ = (
        "calls",
        "prompt_tokens",
        "completion_tokens",
        "cache_hits",
        "cache_misses",
        "coalesced",
        "batched",
        "batch_calls",
        "throttled",
        "throttle_wait_s",
        "rate_limited",
        "requeued",
        "deadline_exceeded",
        "server_errors",
    )

    def __init__(self) -> None:
        self.calls = 0
        self.prompt_tokens = 0
        self.completion_tokens = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.coalesced = 0
        #: Requests served through a grouped (batched) wire call.
        self.batched = 0
        #: Grouped wire calls issued (each serves >= 1 requests).
        self.batch_calls = 0
        #: Requests that paid a pacing wait at the scheduler's admission gate.
        self.throttled = 0
        #: Virtual seconds spent waiting: pacing waits, 429 backoffs, requeues.
        self.throttle_wait_s = 0.0
        #: 429-style refusals received from providers.
        self.rate_limited = 0
        #: Scheduler requeues after a refusal (each also counts a refusal).
        self.requeued = 0
        #: Requests rejected because their virtual-time deadline was hopeless.
        self.deadline_exceeded = 0
        #: 5xx provider failures that reached the scheduler's requeue path.
        self.server_errors = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def as_dict(self) -> dict[str, int | float]:
        """The counters as a plain JSON-able dict."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"ModelStats(calls={self.calls}, prompt_tokens={self.prompt_tokens}, "
            f"completion_tokens={self.completion_tokens}, "
            f"hits={self.cache_hits}, misses={self.cache_misses}, "
            f"coalesced={self.coalesced}, throttled={self.throttled}, "
            f"rate_limited={self.rate_limited})"
        )


class ClientStats:
    """Aggregate usage across all calls made through one client.

    Every figure is a *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry` -- the same registry a
    :class:`~repro.obs.telemetry.Telemetry` exports -- so a Prometheus
    dump and this API can never disagree.  The counters are individually
    lock-protected, so concurrent ``map()`` workers never lose updates;
    ``per_model`` breaks the totals down by model name and ``reset()``
    zeroes everything (e.g. between experiment phases).
    """

    #: ``(attribute, metric name, help)`` for every model-labelled counter
    #: except the cache statuses, which share one counter.
    _COUNTERS = (
        ("calls", "askit_provider_calls_total", "Provider calls issued."),
        ("prompt_tokens", "askit_prompt_tokens_total", "Prompt tokens consumed."),
        (
            "completion_tokens",
            "askit_completion_tokens_total",
            "Completion tokens produced.",
        ),
        (
            "batch_calls",
            "askit_batch_calls_total",
            "Grouped wire calls issued by the scheduler's batch window.",
        ),
        (
            "batched",
            "askit_batched_requests_total",
            "Requests served through a grouped wire call.",
        ),
        (
            "throttled",
            "askit_throttled_total",
            "Requests that paid a pacing wait at admission.",
        ),
        (
            "throttle_wait_s",
            "askit_throttle_wait_virtual_seconds_total",
            "Virtual seconds spent waiting: pacing, backoffs, requeues.",
        ),
        (
            "rate_limited",
            "askit_rate_limited_total",
            "429-style refusals received from providers.",
        ),
        (
            "requeued",
            "askit_requeued_total",
            "Scheduler requeues after a refusal or server error.",
        ),
        (
            "deadline_exceeded",
            "askit_deadline_exceeded_total",
            "Requests rejected by their virtual-time deadline.",
        ),
        (
            "server_errors",
            "askit_server_errors_total",
            "5xx provider failures reaching the requeue path.",
        ),
    )

    #: The shared cache-outcome counter (labels: ``model``, ``status``).
    _CACHE_METRIC = "askit_cache_events_total"

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        #: The backing registry -- also the session's Prometheus surface.
        self.registry = registry or MetricsRegistry()
        self._counters = {
            attr: self.registry.counter(name, help)
            for attr, name, help in self._COUNTERS
        }
        self._cache_events = self.registry.counter(
            self._CACHE_METRIC, "Response-cache outcomes by status."
        )

    # ----- recording ------------------------------------------------------

    def record(self, result: CompletionResult) -> None:
        """Account one provider call's usage."""
        self._counters["calls"].inc(model=result.model)
        self._counters["prompt_tokens"].inc(
            result.usage.prompt_tokens, model=result.model
        )
        self._counters["completion_tokens"].inc(
            result.usage.completion_tokens, model=result.model
        )

    def record_cache(self, model: str, status: str) -> None:
        """Count one response-cache outcome for ``model``.

        ``status`` is ``"hit"``, ``"miss"``, or ``"coalesced"`` (the
        values :meth:`ResponseCache.fetch
        <repro.core.response_cache.ResponseCache.fetch>` returns).  A
        miss still triggers a normal :meth:`record` for the provider
        call that follows; hits and coalesced replays never do.
        """
        if status not in ("hit", "miss", "coalesced"):  # pragma: no cover
            raise ValueError(f"unknown cache status {status!r}")
        self._cache_events.inc(model=model, status=status)

    def record_batch(self, model: str, size: int) -> None:
        """Count one grouped wire call serving ``size`` requests.

        ``batched / batch_calls`` is the mean group size.  ``calls``
        still counts every *request* served -- each member of a batch
        records its own :meth:`record` -- so ``calls - batched +
        batch_calls`` is the number of wire round-trips actually made.
        """
        self._counters["batch_calls"].inc(model=model)
        self._counters["batched"].inc(size, model=model)

    def record_throttle(self, model: str, wait_s: float) -> None:
        """Count one pacing wait the scheduler charged for ``model``."""
        self._counters["throttled"].inc(model=model)
        self._counters["throttle_wait_s"].inc(wait_s, model=model)

    def record_rate_limited(self, model: str, wait_s: float = 0.0) -> None:
        """Count one provider refusal (``wait_s``: naive backoff charged)."""
        self._counters["rate_limited"].inc(model=model)
        self._counters["throttle_wait_s"].inc(wait_s, model=model)

    def record_requeue(self, model: str, wait_s: float = 0.0) -> None:
        """Count one scheduler requeue (``wait_s``: the Retry-After charged)."""
        self._counters["requeued"].inc(model=model)
        self._counters["throttle_wait_s"].inc(wait_s, model=model)

    def record_server_error(self, model: str, wait_s: float = 0.0) -> None:
        """Count one 5xx provider failure (``wait_s``: the penalty charged)."""
        self._counters["server_errors"].inc(model=model)
        self._counters["throttle_wait_s"].inc(wait_s, model=model)

    def record_deadline(self, model: str) -> None:
        """Count one request rejected by its virtual-time deadline."""
        self._counters["deadline_exceeded"].inc(model=model)

    # ----- totals (registry views) ---------------------------------------

    @property
    def calls(self) -> int:
        """Provider calls issued (cache hits/coalesced excluded)."""
        return int(self._counters["calls"].total())

    @property
    def prompt_tokens(self) -> int:
        """Prompt tokens across all provider calls."""
        return int(self._counters["prompt_tokens"].total())

    @property
    def completion_tokens(self) -> int:
        """Completion tokens across all provider calls."""
        return int(self._counters["completion_tokens"].total())

    @property
    def cache_hits(self) -> int:
        """Requests replayed from the response cache."""
        return int(self._cache_events.total(status="hit"))

    @property
    def cache_misses(self) -> int:
        """Cache-consulted requests that reached the provider."""
        return int(self._cache_events.total(status="miss"))

    @property
    def coalesced(self) -> int:
        """Requests that shared a concurrent identical request's call."""
        return int(self._cache_events.total(status="coalesced"))

    @property
    def batch_calls(self) -> int:
        """Grouped wire calls issued by the scheduler's batch window."""
        return int(self._counters["batch_calls"].total())

    @property
    def batched(self) -> int:
        """Requests served through a grouped wire call."""
        return int(self._counters["batched"].total())

    @property
    def throttled(self) -> int:
        """Requests that paid a pacing wait at the admission gate."""
        return int(self._counters["throttled"].total())

    @property
    def throttle_wait_s(self) -> float:
        """Virtual seconds spent waiting: pacing, backoffs, requeues."""
        return self._counters["throttle_wait_s"].total()

    @property
    def rate_limited(self) -> int:
        """429-style refusals received from providers."""
        return int(self._counters["rate_limited"].total())

    @property
    def requeued(self) -> int:
        """Scheduler requeues after a refusal (each also counts a refusal)."""
        return int(self._counters["requeued"].total())

    @property
    def deadline_exceeded(self) -> int:
        """Requests rejected because their deadline was hopeless."""
        return int(self._counters["deadline_exceeded"].total())

    @property
    def server_errors(self) -> int:
        """5xx provider failures that reached the requeue path."""
        return int(self._counters["server_errors"].total())

    # ----- breakdowns and export -----------------------------------------

    def _model_view(self, name: str) -> ModelStats:
        view = ModelStats()
        view.calls = int(self._counters["calls"].value(model=name))
        view.prompt_tokens = int(self._counters["prompt_tokens"].value(model=name))
        view.completion_tokens = int(
            self._counters["completion_tokens"].value(model=name)
        )
        view.cache_hits = int(self._cache_events.value(model=name, status="hit"))
        view.cache_misses = int(self._cache_events.value(model=name, status="miss"))
        view.coalesced = int(self._cache_events.value(model=name, status="coalesced"))
        view.batched = int(self._counters["batched"].value(model=name))
        view.batch_calls = int(self._counters["batch_calls"].value(model=name))
        view.throttled = int(self._counters["throttled"].value(model=name))
        view.throttle_wait_s = self._counters["throttle_wait_s"].value(model=name)
        view.rate_limited = int(self._counters["rate_limited"].value(model=name))
        view.requeued = int(self._counters["requeued"].value(model=name))
        view.deadline_exceeded = int(
            self._counters["deadline_exceeded"].value(model=name)
        )
        view.server_errors = int(self._counters["server_errors"].value(model=name))
        return view

    def _model_names(self) -> set[str]:
        names: set[str] = set()
        for counter in self._counters.values():
            names |= counter.label_values("model")
        names |= self._cache_events.label_values("model")
        return names

    @property
    def per_model(self) -> dict[str, ModelStats]:
        """A consistent snapshot of the per-model breakdown.

        Each :class:`ModelStats` is a detached copy, so iterating it
        while batch workers record concurrently is safe.
        """
        return {name: self._model_view(name) for name in sorted(self._model_names())}

    def for_model(self, name: str) -> ModelStats:
        """A snapshot of one model's usage (zeros if never called)."""
        return self._model_view(name)

    def as_dict(self) -> dict[str, Any]:
        """Every total plus the per-model breakdown, as plain data.

        The shape is stable and JSON-able -- what eval drivers should
        persist instead of reaching into attributes.
        """
        totals: dict[str, Any] = {
            attr: getattr(self, attr) for attr, _name, _help in self._COUNTERS
        }
        totals["cache_hits"] = self.cache_hits
        totals["cache_misses"] = self.cache_misses
        totals["coalesced"] = self.coalesced
        totals["per_model"] = {
            name: view.as_dict() for name, view in self.per_model.items()
        }
        return totals

    def snapshot(self) -> "ClientStats":
        """A detached point-in-time copy backed by its own registry.

        The copy never changes when the live client keeps recording --
        what drivers want when they store "stats after phase one".
        """
        frozen = ClientStats()
        for attr, _name, _help in self._COUNTERS:
            source, target = self._counters[attr], frozen._counters[attr]
            for key, value in source.series().items():
                target.inc(value, **dict(key))
        for key, value in self._cache_events.series().items():
            frozen._cache_events.inc(value, **dict(key))
        return frozen

    def reset(self) -> None:
        """Zero every counter this stats object writes.

        Only the stats-owned instruments are touched; telemetry series
        sharing the registry (span counts, stage histograms) survive.
        """
        for counter in self._counters.values():
            counter.reset()
        self._cache_events.reset()

    def __repr__(self) -> str:
        cache = ""
        if self.cache_hits or self.cache_misses or self.coalesced:
            cache = (
                f", hits={self.cache_hits}, misses={self.cache_misses}, "
                f"coalesced={self.coalesced}"
            )
        throttle = ""
        if self.throttled or self.rate_limited or self.deadline_exceeded:
            throttle = (
                f", throttled={self.throttled}, rate_limited={self.rate_limited}, "
                f"requeued={self.requeued}, wait={self.throttle_wait_s:.2f}s"
            )
        return (
            f"ClientStats(calls={self.calls}, prompt_tokens={self.prompt_tokens}, "
            f"completion_tokens={self.completion_tokens}{cache}{throttle})"
        )


class ChatClient:
    """Routes chat completions to providers and accounts for time.

    Model names resolve to providers by longest registered prefix
    (:func:`repro.llm.providers.register_provider`); names matching no
    prefix get the simulated backend, and a :class:`LanguageModel`
    registered by exact name via :meth:`register` takes precedence over
    any prefix.
    """

    def __init__(
        self,
        models: dict[str, LanguageModel] | None = None,
        clock: VirtualClock | None = None,
        noise_policy: NoisePolicy | None = None,
        recorder: "TranscriptRecorder | None" = None,
        rate_limit: SimulatedRateLimit | None = None,
        wire_policy: WirePolicy | None = None,
    ) -> None:
        self.models: dict[str, LanguageModel] = dict(models or {})
        self.clock = clock or VirtualClock()
        self.noise_policy = noise_policy
        #: How wire providers instantiated for this client reach the
        #: network (:class:`~repro.llm.providers.wire.WirePolicy`);
        #: ``None`` resolves from the environment (hermetic by default).
        self.wire_policy = wire_policy
        #: Optional provider-side throttling for the simulated family
        #: (:class:`~repro.llm.ratelimit.SimulatedRateLimit`); ``None``
        #: means simulated models never refuse.
        self.rate_limit = rate_limit
        self.stats = ClientStats()
        #: The attached :class:`~repro.obs.telemetry.Telemetry`, set by
        #: :meth:`Telemetry.attach`; ``None`` keeps tracing off (the
        #: instrumented paths reduce to a single ``is None`` check).
        self.telemetry: "Telemetry | None" = None
        #: Optional transcript recorder (off by default; see
        #: :mod:`repro.llm.transcript`).
        self.recorder = recorder
        self._providers: dict[str, Provider] = {}
        # Adapters for models registered by exact name via register();
        # these shadow prefix routing.  Backends a provider lazily caches
        # in ``models`` (the simulated family) never appear here.
        self._exact: dict[str, RegisteredModelProvider] = {
            name: RegisteredModelProvider(model)
            for name, model in self.models.items()
        }
        self._lock = threading.Lock()
        self._recorder_lock = threading.Lock()

    def provider_for(self, model: str) -> Provider:
        """The provider serving ``model`` (instantiated once per client)."""
        adapter = self._exact.get(model)
        if adapter is not None:
            return adapter
        prefix, factory = resolve_factory(model)
        provider = self._providers.get(prefix)
        if provider is not None:
            return provider
        # Instantiate outside the lock: factories receive the owning
        # client and may legitimately call back into it (e.g. to wrap
        # another provider).  A racing duplicate is discarded.
        created = factory(self)
        with self._lock:
            return self._providers.setdefault(prefix, created)

    def resolve(self, name: str) -> LanguageModel:
        """The backend for ``name``; simulated backends are created lazily.

        Only providers that expose per-name ``language_model`` objects (the
        simulated family and exact-name registrations) can be resolved this
        way; wire-level providers serve completions without one.
        """
        provider = self.provider_for(name)
        language_model = getattr(provider, "language_model", None)
        if language_model is None:
            raise LookupError(
                f"provider {provider.name!r} for model {name!r} does not "
                "expose a LanguageModel; call chat_complete instead"
            )
        return language_model(name)

    def register(self, model: LanguageModel) -> None:
        self.models[model.name] = model
        self._exact[model.name] = RegisteredModelProvider(model)

    def chat_complete(
        self,
        model: str,
        messages: Sequence[ChatMessage] | str,
        temperature: float = 1.0,
        cache: "ResponseCache | None" = None,
        scheduler: "RequestScheduler | None" = None,
        priority: int = 0,
    ) -> CompletionResult:
        """Complete a conversation; a bare string is wrapped as one user
        message (the shape AskIt's prompts use).

        When ``cache`` (a :class:`~repro.core.response_cache.ResponseCache`)
        is given, the request is served through it: a stored entry replays
        with zero latency, a concurrent identical request coalesces onto
        one provider call, and only true misses reach the provider (and
        get persisted in read-write mode).  Hit/miss/coalesced outcomes
        are tallied on :attr:`stats`.

        When ``scheduler`` (a
        :class:`~repro.core.scheduler.RequestScheduler`) is given, the
        provider call passes through its admission gate -- rate pacing,
        adaptive concurrency, deadlines, 429 requeues -- at ``priority``
        (lower goes first).  Cache hits and coalesced replays never touch
        the scheduler: only genuine provider traffic is throttled.
        Without a scheduler, a rate-limited request falls back to naive
        exponential backoff around the provider's ``retry_after_s`` hint.
        """
        messages = self._as_messages(messages)
        with self._span(
            "askit.request", model=model, scheduled=scheduler is not None
        ):
            if cache is None:
                result = self._issue(model, messages, temperature, scheduler, priority)
                self._account(model, messages, result)
                return result
            window = scheduler.window if scheduler is not None else None
            with self._span("askit.cache", model=model) as cache_span:
                status, result = cache.fetch(
                    model,
                    messages,
                    temperature,
                    lambda: self._issue(
                        model, messages, temperature, scheduler, priority
                    ),
                    follower_wait=(
                        window.follower_wait if window is not None else None
                    ),
                )
                if cache_span is not None:
                    cache_span.set_attribute("cache.status", status)
            if window is not None and status != "miss":
                # A hit or coalesced replay issues no wire request; tell
                # the open batch window so forming groups never wait on
                # this worker's arrival (idempotent per work item).
                window.resign()
            self._settle_cached(model, messages, status, result)
            return result

    async def achat_complete(
        self,
        model: str,
        messages: Sequence[ChatMessage] | str,
        temperature: float = 1.0,
        cache: "ResponseCache | None" = None,
        scheduler: "RequestScheduler | None" = None,
        priority: int = 0,
    ) -> CompletionResult:
        """Async counterpart of :meth:`chat_complete`.

        Uses the provider's native async path when it has one; otherwise
        the sync ``complete`` runs on a worker thread so the event loop
        never blocks.  ``cache`` and ``scheduler`` behave exactly as in
        :meth:`chat_complete`; coalesced followers await the leader
        without blocking the loop, and scheduled admission never holds a
        lock across the awaited provider call.
        """
        messages = self._as_messages(messages)
        with self._span(
            "askit.request", model=model, scheduled=scheduler is not None
        ):
            if cache is None:
                result = await self._aissue(
                    model, messages, temperature, scheduler, priority
                )
                self._account(model, messages, result)
                return result
            with self._span("askit.cache", model=model) as cache_span:
                status, result = await cache.afetch(
                    model,
                    messages,
                    temperature,
                    lambda: self._aissue(
                        model, messages, temperature, scheduler, priority
                    ),
                )
                if cache_span is not None:
                    cache_span.set_attribute("cache.status", status)
            self._settle_cached(model, messages, status, result)
            return result

    def _issue(
        self,
        model: str,
        messages: Sequence[ChatMessage],
        temperature: float,
        scheduler: "RequestScheduler | None",
        priority: int,
    ) -> CompletionResult:
        """One provider round-trip: scheduled, or naive-backoff on 429s."""
        call = lambda: self._transport_complete(  # noqa: E731
            model, messages, temperature
        )
        if scheduler is not None:
            return scheduler.run(
                self,
                model,
                messages,
                call,
                priority=priority,
                batch=self._batch_request(model, temperature, scheduler),
            )
        return self._complete_with_backoff(model, call)

    def _batch_request(
        self, model: str, temperature: float, scheduler: "RequestScheduler"
    ):
        """This request's batch capability, or ``None`` to go solo.

        Built only while the scheduler has an open batch window and the
        model's provider advertises ``supports_batch``.  The grouped
        transport call routes through :meth:`_transport_complete_batch`,
        so every batch leaves a traced, accounted wire call.
        """
        if scheduler.window is None:
            return None
        provider = self.provider_for(model)
        if not getattr(provider, "supports_batch", False):
            return None
        # Imported lazily: at module-import time core.scheduler is still
        # loading (core imports llm); by first call everything is ready.
        from repro.core.scheduler import BatchRequest

        return BatchRequest(
            (id(self), model, round(temperature, 6)),
            getattr(provider, "max_batch_size", 1),
            lambda message_lists: self._transport_complete_batch(
                model, message_lists, temperature
            ),
        )

    async def _aissue(
        self,
        model: str,
        messages: Sequence[ChatMessage],
        temperature: float,
        scheduler: "RequestScheduler | None",
        priority: int,
    ) -> CompletionResult:
        call = lambda: self._acomplete_provider(  # noqa: E731
            model, messages, temperature
        )
        if scheduler is not None:
            return await scheduler.arun(
                self, model, messages, call, priority=priority
            )
        for attempt in range(RATE_LIMIT_MAX_ATTEMPTS + 1):
            try:
                return await call()
            except RateLimitError as refusal:
                self._backoff(model, refusal, attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def _complete_with_backoff(
        self, model: str, call: "Callable[[], CompletionResult]"
    ) -> CompletionResult:
        """The unscheduled path's 429 handling: wait out the hint, retry.

        Each successive refusal of one request doubles the charged wait
        (``retry_after_s * RATE_LIMIT_BACKOFF_BASE ** attempt``) -- the
        classic uncoordinated client.  Compare the scheduler, which paces
        *before* issuing and rarely sees a refusal at all.
        """
        for attempt in range(RATE_LIMIT_MAX_ATTEMPTS + 1):
            try:
                return call()
            except RateLimitError as refusal:
                self._backoff(model, refusal, attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff(self, model: str, refusal: RateLimitError, attempt: int) -> None:
        """Charge one naive backoff wait, or re-raise when out of attempts."""
        if attempt >= RATE_LIMIT_MAX_ATTEMPTS:
            self.stats.record_rate_limited(model)
            raise refusal
        wait = refusal.retry_after_s * (RATE_LIMIT_BACKOFF_BASE**attempt)
        self.clock.charge(wait)
        self.stats.record_rate_limited(model, wait)

    def _span(self, name: str, **attributes: Any) -> ContextManager[Span | None]:
        """A tracer span when telemetry is attached, else a no-op context."""
        telemetry = self.telemetry
        if telemetry is None:
            return nullcontext()
        return telemetry.tracer.span(name, attributes)

    def _transport_complete(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        """One provider call inside an ``askit.transport`` span.

        A refusal (429) or server error surfaces as an error-status
        transport span, so every attempt -- including the ones the
        scheduler requeues -- leaves its own span in the same trace.
        """
        with self._span("askit.transport", model=model) as span:
            result = self.provider_for(model).complete(model, messages, temperature)
            if span is not None:
                span.set_attribute("latency_s", result.latency_s)
                span.set_attribute("cached", result.cached)
            return result

    def _transport_complete_batch(
        self,
        model: str,
        message_lists: Sequence[Sequence[ChatMessage]],
        temperature: float,
    ) -> "list[CompletionResult | Exception]":
        """One grouped provider call inside an ``askit.transport`` span.

        Returns one entry per item, in order: the item's result, or the
        failure it drew (per-item isolation).  A refusal of the whole
        wire call (429/5xx) raises instead, so the scheduler requeues
        every member.
        """
        with self._span(
            "askit.transport", model=model, batched=True
        ) as span:
            results = self.provider_for(model).batch_complete(
                model, message_lists, temperature
            )
            self.stats.record_batch(model, len(message_lists))
            if span is not None:
                span.set_attribute("batch.size", len(message_lists))
            return results

    async def _acomplete_provider(
        self, model: str, messages: Sequence[ChatMessage], temperature: float
    ) -> CompletionResult:
        with self._span("askit.transport", model=model) as span:
            provider = self.provider_for(model)
            if provider.supports_async:
                result = await provider.acomplete(model, messages, temperature)
            else:
                result = await asyncio.to_thread(
                    provider.complete, model, messages, temperature
                )
            if span is not None:
                span.set_attribute("latency_s", result.latency_s)
                span.set_attribute("cached", result.cached)
            return result

    def _settle_cached(
        self,
        model: str,
        messages: Sequence[ChatMessage],
        status: str,
        result: CompletionResult,
    ) -> None:
        """Account one cache-served request: misses charge, replays don't."""
        self.stats.record_cache(model, status)
        if status == "miss":
            self._account(model, messages, result)

    @staticmethod
    def _as_messages(messages: Sequence[ChatMessage] | str) -> Sequence[ChatMessage]:
        if isinstance(messages, str):
            return [user_message(messages)]
        return messages

    def _account(
        self, model: str, messages: Sequence[ChatMessage], result: CompletionResult
    ) -> None:
        self.clock.charge(result.latency_s)
        self.stats.record(result)
        if self.recorder is not None:
            # Dedicated lock: a slow recorder must not block provider
            # resolution for concurrent batch workers.
            with self._recorder_lock:
                self.recorder.record(model, messages, result)


_DEFAULT_CLIENT: ChatClient | None = None


def default_client() -> ChatClient:
    """The process-wide client used when no explicit client is configured."""
    global _DEFAULT_CLIENT
    if _DEFAULT_CLIENT is None:
        _DEFAULT_CLIENT = ChatClient()
    return _DEFAULT_CLIENT


def reset_default_client() -> None:
    """Discard the process-wide client (tests use this for isolation)."""
    global _DEFAULT_CLIENT
    _DEFAULT_CLIENT = None
