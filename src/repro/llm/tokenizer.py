"""Approximate tokenizer for usage accounting and latency modeling.

We do not ship a BPE vocabulary; token counts only drive the latency model
and usage statistics, so a calibrated approximation is sufficient.  The
heuristic blends a word/punctuation split with the familiar ~4 characters
per token rule, which tracks cl100k_base within ~10 % on English prose and
code.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9_]+|[^\sA-Za-z0-9_]")


def count_tokens(text: str) -> int:
    """Approximate token count of ``text``."""
    if not text:
        return 0
    pieces = _WORD_RE.findall(text)
    # Long identifiers and words split into multiple BPE tokens; charge one
    # token per started chunk of 6 characters.
    total = 0
    for piece in pieces:
        total += max(1, (len(piece) + 5) // 6)
    by_chars = (len(text) + 3) // 4
    # The true count usually lies between the two estimates.
    return max(1, (total + by_chars) // 2)


def count_message_tokens(texts: list[str]) -> int:
    """Token count of a multi-message conversation (4 overhead per message)."""
    return sum(count_tokens(text) + 4 for text in texts)
