"""Zero-dependency HTTP substrate for the wire providers.

Real backends (OpenAI, Anthropic, Gemini) differ only in how a chat
request is marshalled; everything transport-shaped is identical and
lives here, built purely on the standard library (``urllib`` over
``http.client``) so the repo stays free of SDK dependencies:

* :class:`HTTPRequest` / :class:`HTTPResponse` -- the value objects one
  wire exchange is made of.  A *transport* is any callable mapping a
  request to a response: :class:`UrllibTransport` does real sockets,
  :class:`~repro.llm.cassette.CassetteTransport` replays recordings,
  and tests script arbitrary faults.
* :class:`HTTPClient` -- drives a transport and maps the outcome into
  the typed error taxonomy of :mod:`repro.errors`
  (:class:`~repro.errors.TransportError`,
  :class:`~repro.errors.TransportTimeoutError` -- re-exported here as
  ``TimeoutError`` -- :class:`~repro.errors.AuthError`,
  :class:`~repro.errors.RateLimitError` carrying ``retry_after_s``,
  :class:`~repro.errors.ServerError`,
  :class:`~repro.errors.MalformedResponseError`).  Transient failures
  (network errors, timeouts, 5xx) are retried with exponential backoff;
  429s propagate immediately because admission control -- the
  scheduler's requeue path or the client's naive backoff -- owns them.

The taxonomy is exactly what the layers above key on: a 429 becomes the
same :class:`~repro.errors.RateLimitError` the simulated rate limit
raises, so the whole PR 1-3 scheduler/cache stack works unchanged
against real wire protocols.
"""

from __future__ import annotations

import builtins
import json
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

from repro.errors import (
    AuthError,
    HTTPStatusError,
    MalformedResponseError,
    RateLimitError,
    ServerError,
    TransportError,
    TransportTimeoutError,
)
from repro.obs.trace import add_event

#: The taxonomy name the ISSUE/paper-facing docs use; the class lives in
#: :mod:`repro.errors` under a non-shadowing name.
TimeoutError = TransportTimeoutError

#: Default per-request timeout for live transports, in real seconds.
DEFAULT_TIMEOUT_S = 30.0

#: How many times :class:`HTTPClient` attempts one request before a
#: transient failure (network error, timeout, 5xx) propagates.
DEFAULT_MAX_ATTEMPTS = 3

#: First retry backoff in real seconds; doubles per attempt.
DEFAULT_BACKOFF_BASE_S = 0.5

#: How much of an error body is kept on raised status errors.
BODY_PREVIEW_BYTES = 400


class HTTPRequest:
    """One wire request: method, URL, headers, raw body bytes."""

    __slots__ = ("method", "url", "headers", "body")

    def __init__(
        self,
        method: str,
        url: str,
        headers: Mapping[str, str] | None = None,
        body: bytes | None = None,
    ) -> None:
        self.method = method.upper()
        self.url = url
        self.headers = dict(headers or {})
        self.body = body

    @classmethod
    def json_request(
        cls,
        method: str,
        url: str,
        payload: Any,
        headers: Mapping[str, str] | None = None,
    ) -> "HTTPRequest":
        """A request whose body is ``payload`` serialized as JSON."""
        merged = {"Content-Type": "application/json", **(headers or {})}
        body = json.dumps(payload, ensure_ascii=False).encode("utf-8")
        return cls(method, url, merged, body)

    def json(self) -> Any:
        """The body decoded as JSON (``None`` for a bodyless request)."""
        if self.body is None:
            return None
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:
        size = len(self.body) if self.body is not None else 0
        return f"HTTPRequest({self.method} {self.url}, {size} body bytes)"


class HTTPResponse:
    """One wire response: status, headers, raw body, elapsed time.

    ``elapsed_s`` is the transport's measured round-trip in seconds --
    real time for live transports, the *recorded* round-trip for
    cassette replays, which is what keeps replayed latency accounting
    deterministic.
    """

    __slots__ = ("status", "headers", "body", "elapsed_s")

    def __init__(
        self,
        status: int,
        headers: Mapping[str, str] | None = None,
        body: bytes = b"",
        elapsed_s: float = 0.0,
    ) -> None:
        self.status = status
        self.headers = dict(headers or {})
        self.body = body
        self.elapsed_s = elapsed_s

    def header(self, name: str, default: str | None = None) -> str | None:
        """A header value by case-insensitive name."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    def json(self) -> Any:
        """The body decoded as JSON (raises ``ValueError`` when it isn't)."""
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:
        return f"HTTPResponse({self.status}, {len(self.body)} body bytes)"


@runtime_checkable
class Transport(Protocol):
    """Anything that exchanges an :class:`HTTPRequest` for a response.

    Implementations raise :class:`~repro.errors.TransportError` (or a
    subclass) for failures below the HTTP layer and return a response --
    *whatever its status* -- once one arrives; status classification is
    :class:`HTTPClient`'s job, so live, cassette, and fault-injection
    transports all flow through identical error handling.
    """

    def __call__(self, request: HTTPRequest) -> HTTPResponse:
        """Perform one exchange."""
        ...


class UrllibTransport:
    """The live transport: stdlib ``urllib`` over real sockets."""

    def __init__(self, timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        self.timeout_s = timeout_s

    def __call__(self, request: HTTPRequest) -> HTTPResponse:
        """Send ``request`` over the network; never raises for status."""
        wire = urllib.request.Request(
            request.url,
            data=request.body,
            headers=dict(request.headers),
            method=request.method,
        )
        started = time.monotonic()
        try:
            with urllib.request.urlopen(wire, timeout=self.timeout_s) as raw:
                body = raw.read()
                return HTTPResponse(
                    raw.status,
                    dict(raw.headers.items()),
                    body,
                    time.monotonic() - started,
                )
        except urllib.error.HTTPError as error:
            # Non-2xx statuses arrive as exceptions from urllib; normalize
            # them back into plain responses for uniform classification.
            body = error.read()
            return HTTPResponse(
                error.code,
                dict(error.headers.items()) if error.headers else {},
                body,
                time.monotonic() - started,
            )
        except urllib.error.URLError as error:
            reason = getattr(error, "reason", error)
            if isinstance(reason, (socket.timeout, builtins.TimeoutError)):
                raise TransportTimeoutError(
                    f"request to {request.url} timed out after {self.timeout_s}s",
                    timeout_s=self.timeout_s,
                    phase="connect",
                    url=request.url,
                    cause=error,
                ) from error
            raise TransportError(
                f"request to {request.url} failed: {reason}",
                url=request.url,
                cause=error,
            ) from error
        except socket.timeout as error:
            raise TransportTimeoutError(
                f"request to {request.url} timed out after {self.timeout_s}s",
                timeout_s=self.timeout_s,
                phase="read",
                url=request.url,
                cause=error,
            ) from error
        except OSError as error:
            raise TransportError(
                f"request to {request.url} failed: {error}",
                url=request.url,
                cause=error,
            ) from error


def parse_retry_after(value: str | None) -> float | None:
    """Seconds promised by a ``Retry-After`` header, or ``None``.

    Only the delta-seconds form is honoured (every LLM provider uses
    it); HTTP-date values and garbage parse to ``None`` so callers fall
    back to their default penalty.
    """
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return seconds if seconds >= 0 else None


class HTTPClient:
    """Drives a transport and raises the typed taxonomy.

    One client is shared per provider instance; it is stateless apart
    from its retry knobs, so it is thread-safe by construction.  The
    ``sleep`` hook exists so fault-injection tests can count backoffs
    without waiting real time.
    """

    def __init__(
        self,
        transport: Transport | None = None,
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        # Identity check, not truthiness: an empty CassetteTransport is
        # falsy (len() == 0) but must never be swapped for a live one.
        self.transport: Transport = (
            transport if transport is not None else UrllibTransport(timeout_s)
        )
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self._sleep = sleep

    def post_json(
        self,
        url: str,
        payload: Any,
        headers: Mapping[str, str] | None = None,
        *,
        model: str = "",
    ) -> tuple[Any, HTTPResponse]:
        """POST ``payload`` as JSON; returns ``(decoded_body, response)``."""
        return self.send(
            HTTPRequest.json_request("POST", url, payload, headers), model=model
        )

    def send(
        self, request: HTTPRequest, *, model: str = ""
    ) -> tuple[Any, HTTPResponse]:
        """One classified exchange: ``(decoded JSON body, response)``.

        Transient failures -- :class:`~repro.errors.TransportError`,
        timeouts, 5xx -- are retried up to ``max_attempts`` with
        exponential backoff (a 5xx ``Retry-After`` stretches the wait).
        Everything else raises immediately: 401/403 as
        :class:`~repro.errors.AuthError`, 429 as
        :class:`~repro.errors.RateLimitError` with the server's
        ``retry_after_s``, other non-2xx as
        :class:`~repro.errors.HTTPStatusError`, and undecodable success
        bodies as :class:`~repro.errors.MalformedResponseError`.
        """
        failure: TransportError | None = None
        for attempt in range(self.max_attempts):
            if attempt:
                wait = self.backoff_base_s * (2.0 ** (attempt - 1))
                if isinstance(failure, ServerError):
                    wait = max(wait, failure.retry_after_s)
                add_event("http.retry", attempt=attempt, backoff_s=wait)
                self._sleep(wait)
            try:
                response = self.transport(request)
            except TransportError as error:
                if not error.retryable:
                    raise
                add_event(
                    "http.transport_error",
                    attempt=attempt + 1,
                    error=type(error).__name__,
                )
                failure = error
                continue
            add_event(
                "http.response",
                status=response.status,
                attempt=attempt + 1,
                elapsed_s=response.elapsed_s,
                retry_after=response.header("Retry-After"),
            )
            try:
                return self._classify(request, response, model), response
            except ServerError as error:
                failure = error
                continue
        assert failure is not None
        raise failure

    def _classify(
        self, request: HTTPRequest, response: HTTPResponse, model: str
    ) -> Any:
        """Map one response to decoded JSON or the right taxonomy error."""
        status = response.status
        preview = response.body[:BODY_PREVIEW_BYTES].decode("utf-8", "replace")
        if status in (401, 403):
            raise AuthError(
                f"{request.url} rejected the request's credentials "
                f"(HTTP {status}): {preview}",
                status=status,
                body_preview=preview,
                url=request.url,
            )
        if status == 429:
            retry_after = parse_retry_after(response.header("Retry-After"))
            raise RateLimitError(
                f"{request.url} rate-limited the request (HTTP 429)",
                retry_after_s=retry_after if retry_after is not None else 1.0,
                model=model,
            )
        if status >= 500:
            retry_after = parse_retry_after(response.header("Retry-After"))
            raise ServerError(
                f"{request.url} failed server-side (HTTP {status}): {preview}",
                status=status,
                retry_after_s=retry_after if retry_after is not None else 1.0,
                body_preview=preview,
                url=request.url,
            )
        if not 200 <= status < 300:
            raise HTTPStatusError(
                f"{request.url} answered HTTP {status}: {preview}",
                status=status,
                body_preview=preview,
                url=request.url,
            )
        try:
            return response.json()
        except ValueError as error:
            raise MalformedResponseError(
                f"{request.url} returned undecodable JSON "
                f"(HTTP {status}, {len(response.body)} bytes): {preview}",
                url=request.url,
                cause=error,
            ) from error


__all__ = [
    "HTTPRequest",
    "HTTPResponse",
    "Transport",
    "UrllibTransport",
    "HTTPClient",
    "parse_retry_after",
    "TimeoutError",
    "DEFAULT_TIMEOUT_S",
    "DEFAULT_MAX_ATTEMPTS",
]
