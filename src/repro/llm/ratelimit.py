"""Simulated provider-side rate limiting.

Hosted LLM endpoints meter traffic per model -- so many requests per
minute, so many tokens per minute -- and answer violations with HTTP 429
plus a ``Retry-After`` hint.  :class:`SimulatedRateLimit` reproduces that
behaviour on the virtual clock so the scheduler's admission control
(:mod:`repro.core.scheduler`) and the client's backoff path are exercised
end to end without a network.

The limiter is a GCRA ("leaky bucket as meter") per model name: each
admitted request advances a theoretical-arrival-time (TAT) by one emission
interval, and a request arriving earlier than ``TAT - burst * interval``
is refused.  Arrival times come from
:meth:`repro.llm.latency.VirtualClock.now`, so a caller that *charges*
waiting time to its clock genuinely moves itself later in virtual time --
exactly how waiting out a ``Retry-After`` works against a real endpoint.

Attach one to a client to enable throttling for every simulated model it
serves::

    from repro.llm import ChatClient, SimulatedRateLimit

    limit = SimulatedRateLimit(requests_per_minute=60, burst=4)
    client = ChatClient(rate_limit=limit)
"""

from __future__ import annotations

import threading

from repro.errors import ConfigError, RateLimitError

#: Guard band (virtual seconds) absorbing float rounding in arrival
#: comparisons, so a request paced to start exactly on its emission slot
#: is never refused by an epsilon.
_SLACK_S = 1e-9


class SimulatedRateLimit:
    """Deterministic 429 emission for the simulated provider family.

    Parameters
    ----------
    requests_per_minute:
        Sustained request rate each model tolerates.
    burst:
        How many requests beyond the sustained rate may arrive
        back-to-back before the limiter refuses (the bucket depth).
    min_retry_after_s:
        Floor on the ``retry_after_s`` a refusal reports.  Real endpoints
        round the hint up generously; a punitive floor is what makes
        naive retry loops measurably slower than scheduled admission.
    """

    def __init__(
        self,
        requests_per_minute: float,
        burst: int = 4,
        min_retry_after_s: float = 10.0,
    ) -> None:
        if requests_per_minute <= 0:
            raise ConfigError("requests_per_minute must be positive")
        if burst < 1:
            raise ConfigError("burst must be >= 1")
        if min_retry_after_s < 0:
            raise ConfigError("min_retry_after_s must be >= 0")
        self.requests_per_minute = float(requests_per_minute)
        self.burst = int(burst)
        self.min_retry_after_s = float(min_retry_after_s)
        self._interval_s = 60.0 / self.requests_per_minute
        self._tat: dict[str, float] = {}
        self._lock = threading.Lock()
        #: Total refusals issued, per model (inspection/testing aid).
        self.refusals: dict[str, int] = {}

    @property
    def interval_s(self) -> float:
        """Virtual seconds between requests at the sustained rate."""
        return self._interval_s

    @property
    def tolerance_s(self) -> float:
        """How far ahead of schedule an arrival may be (the burst depth)."""
        return self.burst * self._interval_s

    def check(self, model: str, now: float) -> None:
        """Admit one request for ``model`` arriving at virtual time ``now``.

        Raises :class:`~repro.errors.RateLimitError` carrying a
        ``retry_after_s`` hint when the arrival violates the limit.
        Refusals do not advance the limiter state (a rejected request
        consumed no capacity), so honouring the hint always succeeds.
        """
        with self._lock:
            tat = self._tat.get(model, 0.0)
            earliest = tat - self.tolerance_s
            if now + _SLACK_S >= earliest:
                self._tat[model] = max(tat, now) + self._interval_s
                return
            self.refusals[model] = self.refusals.get(model, 0) + 1
            retry_after = max(self.min_retry_after_s, earliest - now)
        raise RateLimitError(
            f"rate limit exceeded for {model!r} "
            f"({self.requests_per_minute:g} requests/min, burst {self.burst}); "
            f"retry after {retry_after:.2f}s",
            retry_after_s=retry_after,
            model=model,
        )

    def reset(self) -> None:
        """Forget all per-model state (tests use this between phases)."""
        with self._lock:
            self._tat.clear()
            self.refusals.clear()

    def __repr__(self) -> str:
        return (
            f"SimulatedRateLimit(rpm={self.requests_per_minute:g}, "
            f"burst={self.burst}, min_retry_after={self.min_retry_after_s:g}s)"
        )
