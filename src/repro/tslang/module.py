"""Loading and calling TypeScript-subset modules from Python.

:class:`TsModule` wraps a parsed+executed program and exposes its exported
functions with AskIt's named-argument calling convention: a function whose
single parameter is a destructured object (``function f({a, b}: ...)``)
is called with one dict; plain-parameter functions are called positionally
in declaration order.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import TsRuntimeError
from repro.tslang import nodes
from repro.tslang.interpreter import DEFAULT_STEP_BUDGET, Environment, Interpreter, TsFunction
from repro.tslang.parser import parse_program
from repro.tslang.values import from_python, to_python


class TsModule:
    """An executed TypeScript-subset compilation unit."""

    def __init__(self, source: str, step_budget: int = DEFAULT_STEP_BUDGET) -> None:
        self.source = source
        self.program: nodes.Program = parse_program(source)
        self.interpreter = Interpreter(step_budget)
        self.environment: Environment = self.interpreter.run(self.program)

    def function_names(self) -> list[str]:
        return list(self.program.functions())

    def declaration(self, name: str) -> nodes.FunctionDecl:
        functions = self.program.functions()
        if name not in functions:
            raise TsRuntimeError(f"module does not define function {name!r}")
        return functions[name]

    def call(self, name: str, named_args: Mapping[str, Any] | None = None) -> Any:
        """Call function ``name`` with Python values; returns a Python value.

        ``named_args`` maps parameter names to values regardless of whether
        the function uses a destructured object parameter or plain
        positional parameters.
        """
        declaration = self.declaration(name)
        fn = self.environment.lookup(name)
        if not isinstance(fn, TsFunction):
            raise TsRuntimeError(f"{name!r} is not a function")
        named_args = dict(named_args or {})
        converted = {key: from_python(value) for key, value in named_args.items()}
        arguments: list[Any] = []
        if len(declaration.params) == 1 and declaration.params[0].destructured:
            arguments = [converted]
        else:
            for param in declaration.params:
                param_name = param.names[0]
                if param_name not in converted:
                    raise TsRuntimeError(
                        f"missing argument {param_name!r} for function {name!r}"
                    )
                arguments.append(converted[param_name])
        result = self.interpreter.call(fn, arguments)
        return to_python(result)

    def reset_steps(self) -> None:
        """Reset the interpreter's step counter between calls."""
        self.interpreter.steps = 0


def load_module(source: str, step_budget: int = DEFAULT_STEP_BUDGET) -> TsModule:
    """Parse and execute ``source``, returning a callable module."""
    return TsModule(source, step_budget)
