"""Runtime value model for the TypeScript-subset interpreter.

JavaScript semantics are kept where they matter for generated code:

* all numbers are floats (``1/2 === 0.5``);
* ``undefined`` is distinct from ``null``;
* string conversion renders integral floats without a decimal point
  (``String(5)`` is ``"5"``).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Sequence

from repro.errors import TsRuntimeError


class JSUndefined:
    """The ``undefined`` value (singleton :data:`UNDEFINED`)."""

    _instance: "JSUndefined | None" = None

    def __new__(cls) -> "JSUndefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = JSUndefined()


class JSSet:
    """A ``Set`` with insertion-order iteration.

    Backed by a list of keys because JS sets distinguish values that Python
    would hash equal (``True`` vs ``1``); membership uses strict equality.
    """

    def __init__(self, items: Sequence[Any] = ()) -> None:
        self.items: list[Any] = []
        for item in items:
            self.add(item)

    def add(self, item: Any) -> "JSSet":
        if not self.has(item):
            self.items.append(item)
        return self

    def has(self, item: Any) -> bool:
        return any(strict_equals(existing, item) for existing in self.items)

    def delete(self, item: Any) -> bool:
        for index, existing in enumerate(self.items):
            if strict_equals(existing, item):
                del self.items[index]
                return True
        return False

    @property
    def size(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"Set({self.items!r})"


class JSMap:
    """A ``Map`` with insertion-order iteration and strict-equality keys."""

    def __init__(self) -> None:
        self.entries: list[list[Any]] = []

    def get(self, key: Any) -> Any:
        for existing_key, value in self.entries:
            if strict_equals(existing_key, key):
                return value
        return UNDEFINED

    def set(self, key: Any, value: Any) -> "JSMap":
        for entry in self.entries:
            if strict_equals(entry[0], key):
                entry[1] = value
                return self
        self.entries.append([key, value])
        return self

    def has(self, key: Any) -> bool:
        return any(strict_equals(existing, key) for existing, _ in self.entries)

    def delete(self, key: Any) -> bool:
        for index, (existing, _) in enumerate(self.entries):
            if strict_equals(existing, key):
                del self.entries[index]
                return True
        return False

    @property
    def size(self) -> int:
        return len(self.entries)


class JSDate:
    """Minimal ``Date``: construction from ISO strings, ``getTime`` in ms."""

    def __init__(self, value: Any = None) -> None:
        import datetime as _dt

        if value is None:
            self._dt = _dt.datetime(2024, 1, 1)
        elif isinstance(value, (int, float)):
            self._dt = _dt.datetime.utcfromtimestamp(float(value) / 1000.0)
        elif isinstance(value, str):
            text = value.replace("Z", "")
            try:
                self._dt = _dt.datetime.fromisoformat(text)
            except ValueError:
                raise TsRuntimeError(f"invalid date string {value!r}") from None
        else:
            raise TsRuntimeError(f"cannot construct Date from {value!r}")

    def get_time(self) -> float:
        import datetime as _dt

        epoch = _dt.datetime(1970, 1, 1)
        return (self._dt - epoch).total_seconds() * 1000.0


class NativeFunction:
    """A builtin exposed to interpreted code."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[..., Any]) -> None:
        self.name = name
        self.fn = fn

    def __repr__(self) -> str:
        return f"<native {self.name}>"


# -- coercions ---------------------------------------------------------------


def is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def truthy(value: Any) -> bool:
    """JavaScript truthiness."""
    if value is None or value is UNDEFINED:
        return False
    if isinstance(value, bool):
        return value
    if is_number(value):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    return True


def to_display_string(value: Any) -> str:
    """JavaScript ``String(value)`` conversion."""
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if is_number(value):
        number = float(value)
        if math.isnan(number):
            return "NaN"
        if math.isinf(number):
            return "Infinity" if number > 0 else "-Infinity"
        if number.is_integer() and abs(number) < 1e21:
            return str(int(number))
        return repr(number)
    if isinstance(value, str):
        return value
    if isinstance(value, list):
        return ",".join(to_display_string(item) for item in value)
    if isinstance(value, dict):
        return "[object Object]"
    if isinstance(value, JSSet):
        return "[object Set]"
    return str(value)


def to_number(value: Any) -> float:
    """JavaScript ``Number(value)`` conversion."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if is_number(value):
        return float(value)
    if value is None:
        return 0.0
    if value is UNDEFINED:
        return float("nan")
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            return float(text)
        except ValueError:
            return float("nan")
    return float("nan")


def strict_equals(left: Any, right: Any) -> bool:
    """JavaScript ``===``: value equality for primitives, identity for objects."""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if is_number(left) and is_number(right):
        return float(left) == float(right)
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    if left is None and right is None:
        return True
    if left is UNDEFINED and right is UNDEFINED:
        return True
    if isinstance(left, (list, dict, JSSet, JSMap)) or isinstance(right, (list, dict, JSSet, JSMap)):
        return left is right
    return left is right


def loose_equals(left: Any, right: Any) -> bool:
    """JavaScript ``==`` (the corner we need: null/undefined and numeric strings)."""
    if (left is None or left is UNDEFINED) and (right is None or right is UNDEFINED):
        return True
    if is_number(left) and isinstance(right, str):
        return float(left) == to_number(right)
    if isinstance(left, str) and is_number(right):
        return to_number(left) == float(right)
    if isinstance(left, bool) or isinstance(right, bool):
        return to_number(left) == to_number(right)
    return strict_equals(left, right)


def type_of(value: Any) -> str:
    """JavaScript ``typeof``."""
    if value is UNDEFINED:
        return "undefined"
    if isinstance(value, bool):
        return "boolean"
    if is_number(value):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, NativeFunction) or callable(value):
        return "function"
    return "object"


def to_python(value: Any) -> Any:
    """Convert an interpreter value to plain Python for the host program.

    Integral floats become ints (JS has one number type; AskIt's integer
    type coerces anyway), ``undefined`` becomes ``None``, sets become
    lists, containers convert recursively.
    """
    if value is UNDEFINED:
        return None
    if is_number(value) and isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return int(value)
    if isinstance(value, list):
        return [to_python(item) for item in value]
    if isinstance(value, dict):
        return {key: to_python(item) for key, item in value.items()}
    if isinstance(value, JSSet):
        return [to_python(item) for item in value.items]
    if isinstance(value, JSMap):
        return {to_python(k): to_python(v) for k, v in value.entries}
    return value


def from_python(value: Any) -> Any:
    """Convert a Python value into the interpreter's value model."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [from_python(item) for item in value]
    if isinstance(value, dict):
        return {str(key): from_python(item) for key, item in value.items()}
    raise TsRuntimeError(f"cannot pass {type(value).__name__} values into TypeScript")
