"""Recursive-descent parser for the TypeScript subset.

Expressions use precedence climbing; statements are straightforward
recursive descent.  Semicolons are optional (consumed when present), which
covers both the strict output of our code synthesizer and the looser style
real LLMs produce.

Type annotations are *captured*, not checked: they are re-rendered to
source strings and stored on :class:`Param` / :class:`FunctionDecl` so that
AskIt can recover a generated function's signature.
"""

from __future__ import annotations

from repro.errors import TsSyntaxError
from repro.tslang import nodes
from repro.tslang.lexer import tokenize
from repro.tslang.tokens import EOF, IDENT, KEYWORD, NUMBER, PUNCT, STRING, TEMPLATE, Token

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "**="}

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "??": 1,
    "||": 2,
    "&&": 3,
    "===": 4,
    "!==": 4,
    "==": 4,
    "!=": 4,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
    "**": 8,
}

_LOGICAL_OPS = {"&&", "||", "??"}


def _render_token(token: Token) -> str:
    """Re-render a token as source text (used for annotation capture)."""
    if token.kind == STRING:
        escaped = token.value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if token.kind == NUMBER:
        value = token.value
        if float(value).is_integer():
            return str(int(value))
        return repr(value)
    return str(token.value)


class Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> TsSyntaxError:
        token = token or self._peek()
        return TsSyntaxError(message, token.line, token.column)

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if not token.is_punct(value):
            raise self._error(f"expected {value!r} but found {token.value!r}")
        return self._advance()

    def _match_punct(self, value: str) -> bool:
        if self._peek().is_punct(value):
            self._advance()
            return True
        return False

    def _expect_keyword(self, value: str) -> Token:
        token = self._peek()
        if not token.is_keyword(value):
            raise self._error(f"expected keyword {value!r} but found {token.value!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != IDENT:
            raise self._error(f"expected an identifier but found {token.value!r}")
        self._advance()
        return token.value

    def _consume_semicolon(self) -> None:
        self._match_punct(";")

    # -- entry points ------------------------------------------------------

    def parse_program(self) -> nodes.Program:
        statements: list[nodes.Node] = []
        while self._peek().kind != EOF:
            if self._match_punct(";"):
                continue
            statements.append(self._statement())
        return nodes.Program(statements)

    def parse_expression(self) -> nodes.Node:
        expression = self._expression()
        if self._peek().kind != EOF:
            raise self._error("unexpected trailing input after expression")
        return expression

    # -- statements ---------------------------------------------------------

    def _statement(self) -> nodes.Node:
        token = self._peek()
        if token.kind == KEYWORD:
            if token.value == "export":
                self._advance()
                return self._function_decl(exported=True)
            if token.value == "function":
                return self._function_decl(exported=False)
            if token.value in ("let", "const", "var"):
                return self._var_decl()
            if token.value == "return":
                return self._return_statement()
            if token.value == "if":
                return self._if_statement()
            if token.value == "while":
                return self._while_statement()
            if token.value == "do":
                return self._do_while_statement()
            if token.value == "for":
                return self._for_statement()
            if token.value == "break":
                self._advance()
                self._consume_semicolon()
                return nodes.Break(token.line)
            if token.value == "continue":
                self._advance()
                self._consume_semicolon()
                return nodes.Continue(token.line)
            if token.value == "throw":
                self._advance()
                value = self._expression()
                self._consume_semicolon()
                return nodes.Throw(value, token.line)
        if token.is_punct("{"):
            return self._block()
        expression = self._expression()
        self._consume_semicolon()
        return nodes.ExpressionStatement(expression, token.line)

    def _block(self) -> nodes.Block:
        open_token = self._expect_punct("{")
        statements: list[nodes.Node] = []
        while not self._peek().is_punct("}"):
            if self._peek().kind == EOF:
                raise self._error("unterminated block", open_token)
            if self._match_punct(";"):
                continue
            statements.append(self._statement())
        self._expect_punct("}")
        return nodes.Block(statements, open_token.line)

    def _function_decl(self, exported: bool) -> nodes.FunctionDecl:
        start = self._expect_keyword("function")
        name = self._expect_ident()
        self._expect_punct("(")
        params: list[nodes.Param] = []
        while not self._peek().is_punct(")"):
            params.append(self._param())
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return_annotation = None
        if self._match_punct(":"):
            return_annotation = self._capture_type(stop_at_brace=True)
        body = self._block()
        return nodes.FunctionDecl(
            name, params, body, return_annotation, exported, start.line
        )

    def _param(self) -> nodes.Param:
        token = self._peek()
        if token.is_punct("{"):
            self._advance()
            names: list[str] = []
            while not self._peek().is_punct("}"):
                names.append(self._expect_ident())
                if not self._match_punct(","):
                    break
            self._expect_punct("}")
            annotation = None
            if self._match_punct(":"):
                annotation = self._capture_type()
            return nodes.Param(names, True, annotation, token.line)
        name = self._expect_ident()
        annotation = None
        if self._match_punct(":"):
            annotation = self._capture_type()
        # Default values are parsed and discarded (the subset has no
        # optional-call semantics; the synthesizer never relies on them).
        if self._match_punct("="):
            self._ternary()
        return nodes.Param([name], False, annotation, token.line)

    def _capture_type(self, stop_at_brace: bool = False) -> str:
        """Capture a type annotation as re-rendered source text.

        Scans tokens keeping bracket balance; stops at a top-level ``,``,
        ``)``, ``=`` or ``=>``, or -- when ``stop_at_brace`` -- at a ``{``
        that would open a function body.
        """
        parts: list[str] = []
        depth = 0
        while True:
            token = self._peek()
            if token.kind == EOF:
                raise self._error("unterminated type annotation")
            if depth == 0:
                if token.is_punct(",") or token.is_punct(")") or token.is_punct("=>") or token.is_punct("="):
                    break
                if stop_at_brace and token.is_punct("{") and parts:
                    break
                if stop_at_brace and token.is_punct("{") and not parts:
                    # A record type annotation: consume it balanced.
                    pass
            if token.kind == PUNCT and token.value in "{[(<":
                depth += 1
            elif token.kind == PUNCT and token.value in "}])>":
                if depth == 0:
                    break
                depth -= 1
            parts.append(_render_token(token))
            self._advance()
            if stop_at_brace and depth == 0 and parts and parts[-1] == "}":
                # Just closed a balanced record type; the next `{` is the body.
                if self._peek().is_punct("{"):
                    break
        text = " ".join(parts)
        # Tidy re-rendered spacing so the string parses with types.parse.
        replacements = (
            (" [ ]", "[]"),
            ("[ ", "["),
            (" ]", "]"),
            ("( ", "("),
            (" )", ")"),
            (" :", ":"),
            (" ;", ";"),
            (" ,", ","),
        )
        for a, b in replacements:
            text = text.replace(a, b)
        return text.strip()

    def _var_decl(self) -> nodes.VarDecl:
        kind_token = self._advance()
        declarations: list[tuple[str, nodes.Node | None]] = []
        while True:
            name = self._expect_ident()
            if self._match_punct(":"):
                self._capture_type()
            init: nodes.Node | None = None
            if self._match_punct("="):
                init = self._assignment()
            declarations.append((name, init))
            if not self._match_punct(","):
                break
        self._consume_semicolon()
        return nodes.VarDecl(kind_token.value, declarations, kind_token.line)

    def _return_statement(self) -> nodes.Return:
        token = self._expect_keyword("return")
        if self._peek().is_punct(";") or self._peek().is_punct("}") or self._peek().kind == EOF:
            self._consume_semicolon()
            return nodes.Return(None, token.line)
        value = self._expression()
        self._consume_semicolon()
        return nodes.Return(value, token.line)

    def _if_statement(self) -> nodes.If:
        token = self._expect_keyword("if")
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        consequent = self._statement()
        alternate = None
        if self._peek().is_keyword("else"):
            self._advance()
            alternate = self._statement()
        return nodes.If(test, consequent, alternate, token.line)

    def _while_statement(self) -> nodes.While:
        token = self._expect_keyword("while")
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return nodes.While(test, body, token.line)

    def _do_while_statement(self) -> nodes.DoWhile:
        token = self._expect_keyword("do")
        body = self._statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self._expression()
        self._expect_punct(")")
        self._consume_semicolon()
        return nodes.DoWhile(test, body, token.line)

    def _for_statement(self) -> nodes.Node:
        token = self._expect_keyword("for")
        self._expect_punct("(")
        # for (const x of xs) -- lookahead for the `of` form.
        if self._peek().kind == KEYWORD and self._peek().value in ("let", "const", "var"):
            if self._peek(1).kind == IDENT and self._peek(2).is_keyword("of"):
                kind = self._advance().value
                name = self._expect_ident()
                self._expect_keyword("of")
                iterable = self._expression()
                self._expect_punct(")")
                body = self._statement()
                return nodes.ForOf(kind, name, iterable, body, token.line)
        init: nodes.Node | None = None
        if not self._peek().is_punct(";"):
            if self._peek().kind == KEYWORD and self._peek().value in ("let", "const", "var"):
                init = self._var_decl()  # consumes its own `;`
            else:
                init = nodes.ExpressionStatement(self._expression(), token.line)
                self._expect_punct(";")
        else:
            self._advance()
        test: nodes.Node | None = None
        if not self._peek().is_punct(";"):
            test = self._expression()
        self._expect_punct(";")
        update: nodes.Node | None = None
        if not self._peek().is_punct(")"):
            update = self._expression()
        self._expect_punct(")")
        body = self._statement()
        return nodes.For(init, test, update, body, token.line)

    # -- expressions ---------------------------------------------------------

    def _expression(self) -> nodes.Node:
        return self._assignment()

    def _assignment(self) -> nodes.Node:
        left = self._ternary()
        token = self._peek()
        if token.kind == PUNCT and token.value in _ASSIGN_OPS:
            if not isinstance(left, (nodes.Identifier, nodes.Member, nodes.Index)):
                raise self._error("invalid assignment target", token)
            self._advance()
            value = self._assignment()
            return nodes.Assign(token.value, left, value, token.line)
        return left

    def _ternary(self) -> nodes.Node:
        test = self._binary(1)
        if self._peek().is_punct("?"):
            token = self._advance()
            consequent = self._assignment()
            self._expect_punct(":")
            alternate = self._assignment()
            return nodes.Conditional(test, consequent, alternate, token.line)
        return test

    def _binary(self, min_precedence: int) -> nodes.Node:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind != PUNCT:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.value, 0)
            if precedence < min_precedence or precedence == 0:
                return left
            self._advance()
            # ** is right-associative; everything else is left-associative.
            next_min = precedence if token.value == "**" else precedence + 1
            right = self._binary(next_min)
            if token.value in _LOGICAL_OPS:
                left = nodes.Logical(token.value, left, right, token.line)
            else:
                left = nodes.Binary(token.value, left, right, token.line)

    def _unary(self) -> nodes.Node:
        token = self._peek()
        if token.kind == PUNCT and token.value in ("!", "-", "+"):
            self._advance()
            return nodes.Unary(token.value, self._unary(), token.line)
        if token.is_keyword("typeof"):
            self._advance()
            return nodes.Unary("typeof", self._unary(), token.line)
        if token.kind == PUNCT and token.value in ("++", "--"):
            self._advance()
            target = self._unary()
            return nodes.Update(token.value, target, True, token.line)
        if token.is_keyword("new"):
            self._advance()
            callee = self._postfix(self._primary(), allow_call=False)
            arguments: list[nodes.Node] = []
            if self._match_punct("("):
                arguments = self._arguments()
            return self._postfix(nodes.New(callee, arguments, token.line), allow_call=True)
        return self._postfix(self._primary(), allow_call=True)

    def _arguments(self) -> list[nodes.Node]:
        arguments: list[nodes.Node] = []
        while not self._peek().is_punct(")"):
            if self._match_punct("..."):
                arguments.append(nodes.SpreadElement(self._assignment()))
            else:
                arguments.append(self._assignment())
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return arguments

    def _postfix(self, expression: nodes.Node, allow_call: bool) -> nodes.Node:
        while True:
            token = self._peek()
            if token.is_punct("."):
                self._advance()
                name_token = self._peek()
                if name_token.kind not in (IDENT, KEYWORD):
                    raise self._error("expected a property name after '.'")
                self._advance()
                expression = nodes.Member(expression, name_token.value, token.line)
            elif token.is_punct("["):
                self._advance()
                index = self._expression()
                self._expect_punct("]")
                expression = nodes.Index(expression, index, token.line)
            elif allow_call and token.is_punct("("):
                self._advance()
                expression = nodes.Call(expression, self._arguments(), token.line)
            elif token.kind == PUNCT and token.value in ("++", "--"):
                self._advance()
                expression = nodes.Update(token.value, expression, False, token.line)
            else:
                return expression

    def _primary(self) -> nodes.Node:
        token = self._peek()
        if token.kind == NUMBER:
            self._advance()
            return nodes.NumberLit(token.value, token.line)
        if token.kind == STRING:
            self._advance()
            return nodes.StringLit(token.value, token.line)
        if token.kind == TEMPLATE:
            self._advance()
            parts: list = []
            for part in token.value:
                if isinstance(part, tuple):
                    parts.append(Parser(part[1]).parse_expression())
                else:
                    parts.append(part)
            return nodes.TemplateLit(parts, token.line)
        if token.kind == KEYWORD:
            if token.value == "true":
                self._advance()
                return nodes.BoolLit(True, token.line)
            if token.value == "false":
                self._advance()
                return nodes.BoolLit(False, token.line)
            if token.value == "null":
                self._advance()
                return nodes.NullLit(token.line)
            if token.value == "undefined":
                self._advance()
                return nodes.UndefinedLit(token.line)
            raise self._error(f"unexpected keyword {token.value!r}")
        if token.kind == IDENT:
            # Single-identifier arrow function: `x => expr`.
            if self._peek(1).is_punct("=>"):
                self._advance()
                self._advance()
                return self._arrow_body([token.value], token)
            self._advance()
            return nodes.Identifier(token.value, token.line)
        if token.is_punct("("):
            if self._looks_like_arrow_params():
                params = self._arrow_params()
                self._expect_punct("=>")
                return self._arrow_body(params, token)
            self._advance()
            expression = self._expression()
            self._expect_punct(")")
            return expression
        if token.is_punct("["):
            self._advance()
            elements: list[nodes.Node] = []
            while not self._peek().is_punct("]"):
                if self._match_punct("..."):
                    elements.append(nodes.SpreadElement(self._assignment()))
                else:
                    elements.append(self._assignment())
                if not self._match_punct(","):
                    break
            self._expect_punct("]")
            return nodes.ArrayLit(elements, token.line)
        if token.is_punct("{"):
            return self._object_literal()
        raise self._error(f"unexpected token {token.value!r}")

    def _looks_like_arrow_params(self) -> bool:
        """Lookahead from a '(' to see whether '=>' follows the match."""
        depth = 0
        offset = 0
        while True:
            token = self._peek(offset)
            if token.kind == EOF:
                return False
            if token.kind == PUNCT:
                if token.value == "(":
                    depth += 1
                elif token.value == ")":
                    depth -= 1
                    if depth == 0:
                        return self._peek(offset + 1).is_punct("=>")
            offset += 1

    def _arrow_params(self) -> list[str]:
        self._expect_punct("(")
        params: list[str] = []
        while not self._peek().is_punct(")"):
            params.append(self._expect_ident())
            if self._match_punct(":"):
                self._capture_type()
            if not self._match_punct(","):
                break
        self._expect_punct(")")
        return params

    def _arrow_body(self, params: list[str], token: Token) -> nodes.Arrow:
        if self._peek().is_punct("{"):
            body = self._block()
            return nodes.Arrow(params, body, False, token.line)
        return nodes.Arrow(params, self._assignment(), True, token.line)

    def _object_literal(self) -> nodes.ObjectLit:
        open_token = self._expect_punct("{")
        entries: list[tuple[str, nodes.Node]] = []
        while not self._peek().is_punct("}"):
            key_token = self._peek()
            if key_token.kind in (IDENT, KEYWORD):
                key = str(key_token.value)
                self._advance()
            elif key_token.kind == STRING:
                key = key_token.value
                self._advance()
            elif key_token.kind == NUMBER:
                key = (
                    str(int(key_token.value))
                    if float(key_token.value).is_integer()
                    else repr(key_token.value)
                )
                self._advance()
            else:
                raise self._error("expected an object key")
            if self._match_punct(":"):
                entries.append((key, self._assignment()))
            else:
                # Shorthand { a } == { a: a }.
                entries.append((key, nodes.Identifier(key, key_token.line)))
            if not self._match_punct(","):
                break
        self._expect_punct("}")
        return nodes.ObjectLit(entries, open_token.line)


def parse_program(source: str) -> nodes.Program:
    """Parse a TypeScript-subset compilation unit."""
    return Parser(source).parse_program()


def parse_expression(source: str) -> nodes.Node:
    """Parse a single TypeScript-subset expression."""
    return Parser(source).parse_expression()
