"""Lexer for the TypeScript subset.

Hand-written scanner producing :class:`repro.tslang.tokens.Token` objects.
Handles line/block comments, both string quote styles with escapes,
template literals with ``${...}`` interpolation (captured as raw
sub-expression source, parsed later), numeric literals, identifiers,
keywords, and maximal-munch punctuators.
"""

from __future__ import annotations

from repro.errors import TsSyntaxError
from repro.tslang.tokens import EOF, IDENT, KEYWORD, KEYWORDS, NUMBER, PUNCT, PUNCTUATORS, STRING, TEMPLATE, Token

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "`": "`",
}


class Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0
        self.line = 1
        self.column = 1

    # -- character helpers ---------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self) -> str:
        char = self.source[self.position]
        self.position += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _error(self, message: str) -> TsSyntaxError:
        return TsSyntaxError(message, self.line, self.column)

    # -- scanning --------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Scan the whole source into a token list ending with EOF."""
        result: list[Token] = []
        while True:
            self._skip_trivia()
            if self.position >= len(self.source):
                result.append(Token(EOF, None, self.line, self.column))
                return result
            result.append(self._next_token())

    def _skip_trivia(self) -> None:
        while self.position < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.position < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance()
                self._advance()
                while self.position < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if char.isalpha() or char in "_$":
            return self._identifier(line, column)
        if char in "'\"":
            return self._string(line, column)
        if char == "`":
            return self._template(line, column)
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.position):
                for _ in punct:
                    self._advance()
                return Token(PUNCT, punct, line, column)
        raise self._error(f"unexpected character {char!r}")

    def _number(self, line: int, column: int) -> Token:
        start = self.position
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance()
            self._advance()
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            raw = self.source[start:self.position]
            return Token(NUMBER, float(int(raw, 16)), line, column)
        seen_dot = False
        seen_exp = False
        while True:
            char = self._peek()
            if not char:
                break
            if char.isdigit():
                self._advance()
            elif char == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._advance()
            elif char in "eE" and not seen_exp:
                seen_exp = True
                self._advance()
                if self._peek() and self._peek() in "+-":
                    self._advance()
            else:
                break
        raw = self.source[start:self.position]
        try:
            return Token(NUMBER, float(raw), line, column)
        except ValueError:
            raise self._error(f"malformed number {raw!r}") from None

    def _identifier(self, line: int, column: int) -> Token:
        start = self.position
        while self._peek() and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        name = self.source[start:self.position]
        kind = KEYWORD if name in KEYWORDS else IDENT
        return Token(kind, name, line, column)

    def _string(self, line: int, column: int) -> Token:
        quote = self._advance()
        chars: list[str] = []
        while True:
            if self.position >= len(self.source):
                raise self._error("unterminated string literal")
            char = self._advance()
            if char == quote:
                return Token(STRING, "".join(chars), line, column)
            if char == "\n":
                raise self._error("newline in string literal")
            if char == "\\":
                if self.position >= len(self.source):
                    raise self._error("unterminated string literal")
                escape = self._advance()
                if escape == "u":
                    hex_digits = self.source[self.position:self.position + 4]
                    if len(hex_digits) != 4:
                        raise self._error("bad \\u escape")
                    try:
                        chars.append(chr(int(hex_digits, 16)))
                    except ValueError:
                        raise self._error("bad \\u escape") from None
                    for _ in range(4):
                        self._advance()
                else:
                    chars.append(_ESCAPES.get(escape, escape))
            else:
                chars.append(char)

    def _template(self, line: int, column: int) -> Token:
        """Template literal: value is a list of parts.

        String parts are plain ``str``; interpolations are ``("expr", src)``
        tuples holding the raw sub-expression source text, to be parsed by
        the parser with a nested parser instance.
        """
        self._advance()  # opening backtick
        parts: list = []
        chars: list[str] = []
        while True:
            if self.position >= len(self.source):
                raise self._error("unterminated template literal")
            char = self._peek()
            if char == "`":
                self._advance()
                if chars:
                    parts.append("".join(chars))
                return Token(TEMPLATE, parts, line, column)
            if char == "\\":
                self._advance()
                escape = self._advance()
                chars.append(_ESCAPES.get(escape, escape))
                continue
            if char == "$" and self._peek(1) == "{":
                if chars:
                    parts.append("".join(chars))
                    chars = []
                self._advance()
                self._advance()
                depth = 1
                start = self.position
                while self.position < len(self.source) and depth:
                    inner = self._peek()
                    if inner == "{":
                        depth += 1
                    elif inner == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    self._advance()
                if depth:
                    raise self._error("unterminated ${...} in template literal")
                parts.append(("expr", self.source[start:self.position]))
                self._advance()  # closing brace
                continue
            chars.append(self._advance())


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: scan ``source`` into tokens."""
    return Lexer(source).tokens()
