"""AST node classes for the TypeScript subset.

Plain value classes with ``__slots__``; the interpreter dispatches on the
node class.  Type annotations from the source are preserved as raw strings
(``annotation``) -- the subset interpreter is dynamically typed, but AskIt
uses the annotations to recover signatures from generated code.
"""

from __future__ import annotations

from typing import Any, Sequence


class Node:
    __slots__ = ("line",)

    def __init__(self, line: int = 0) -> None:
        self.line = line

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in self.__slots__
            if name != "line"
        )
        return f"{type(self).__name__}({fields})"


# -- expressions -----------------------------------------------------------


class NumberLit(Node):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class StringLit(Node):
    __slots__ = ("value",)

    def __init__(self, value: str, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class TemplateLit(Node):
    __slots__ = ("parts",)  # str | Node alternating

    def __init__(self, parts: Sequence[Any], line: int = 0) -> None:
        super().__init__(line)
        self.parts = list(parts)


class BoolLit(Node):
    __slots__ = ("value",)

    def __init__(self, value: bool, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class NullLit(Node):
    __slots__ = ()


class UndefinedLit(Node):
    __slots__ = ()


class Identifier(Node):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int = 0) -> None:
        super().__init__(line)
        self.name = name


class ArrayLit(Node):
    __slots__ = ("elements",)

    def __init__(self, elements: Sequence[Node], line: int = 0) -> None:
        super().__init__(line)
        self.elements = list(elements)


class SpreadElement(Node):
    __slots__ = ("argument",)

    def __init__(self, argument: Node, line: int = 0) -> None:
        super().__init__(line)
        self.argument = argument


class ObjectLit(Node):
    __slots__ = ("entries",)  # list of (key, value-Node)

    def __init__(self, entries: Sequence[tuple[str, Node]], line: int = 0) -> None:
        super().__init__(line)
        self.entries = list(entries)


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Node, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.operand = operand


class Update(Node):
    """``x++`` / ``--x`` style increment/decrement."""

    __slots__ = ("op", "target", "prefix")

    def __init__(self, op: str, target: Node, prefix: bool, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.target = target
        self.prefix = prefix


class Binary(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Node, right: Node, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Logical(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Node, right: Node, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Conditional(Node):
    __slots__ = ("test", "consequent", "alternate")

    def __init__(self, test: Node, consequent: Node, alternate: Node, line: int = 0) -> None:
        super().__init__(line)
        self.test = test
        self.consequent = consequent
        self.alternate = alternate


class Assign(Node):
    __slots__ = ("op", "target", "value")

    def __init__(self, op: str, target: Node, value: Node, line: int = 0) -> None:
        super().__init__(line)
        self.op = op
        self.target = target
        self.value = value


class Call(Node):
    __slots__ = ("callee", "arguments")

    def __init__(self, callee: Node, arguments: Sequence[Node], line: int = 0) -> None:
        super().__init__(line)
        self.callee = callee
        self.arguments = list(arguments)


class New(Node):
    __slots__ = ("callee", "arguments")

    def __init__(self, callee: Node, arguments: Sequence[Node], line: int = 0) -> None:
        super().__init__(line)
        self.callee = callee
        self.arguments = list(arguments)


class Member(Node):
    """``object.name`` access."""

    __slots__ = ("object", "name")

    def __init__(self, object: Node, name: str, line: int = 0) -> None:
        super().__init__(line)
        self.object = object
        self.name = name


class Index(Node):
    """``object[index]`` access."""

    __slots__ = ("object", "index")

    def __init__(self, object: Node, index: Node, line: int = 0) -> None:
        super().__init__(line)
        self.object = object
        self.index = index


class Arrow(Node):
    __slots__ = ("params", "body", "is_expression")

    def __init__(self, params: Sequence[str], body: Any, is_expression: bool, line: int = 0) -> None:
        super().__init__(line)
        self.params = list(params)
        self.body = body  # Node when is_expression else Block
        self.is_expression = is_expression


# -- parameters & statements -------------------------------------------------


class Param(Node):
    """A function parameter: plain name or a destructured object pattern."""

    __slots__ = ("names", "destructured", "annotation")

    def __init__(
        self,
        names: Sequence[str],
        destructured: bool,
        annotation: str | None = None,
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.names = list(names)
        self.destructured = destructured
        self.annotation = annotation


class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Node], line: int = 0) -> None:
        super().__init__(line)
        self.statements = list(statements)


class FunctionDecl(Node):
    __slots__ = ("name", "params", "body", "return_annotation", "exported")

    def __init__(
        self,
        name: str,
        params: Sequence[Param],
        body: Block,
        return_annotation: str | None = None,
        exported: bool = False,
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.name = name
        self.params = list(params)
        self.body = body
        self.return_annotation = return_annotation
        self.exported = exported


class VarDecl(Node):
    __slots__ = ("kind", "declarations")  # declarations: list of (name, init-Node|None)

    def __init__(
        self, kind: str, declarations: Sequence[tuple[str, Node | None]], line: int = 0
    ) -> None:
        super().__init__(line)
        self.kind = kind
        self.declarations = list(declarations)


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value: Node | None, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class If(Node):
    __slots__ = ("test", "consequent", "alternate")

    def __init__(self, test: Node, consequent: Node, alternate: Node | None, line: int = 0) -> None:
        super().__init__(line)
        self.test = test
        self.consequent = consequent
        self.alternate = alternate


class While(Node):
    __slots__ = ("test", "body")

    def __init__(self, test: Node, body: Node, line: int = 0) -> None:
        super().__init__(line)
        self.test = test
        self.body = body


class DoWhile(Node):
    __slots__ = ("test", "body")

    def __init__(self, test: Node, body: Node, line: int = 0) -> None:
        super().__init__(line)
        self.test = test
        self.body = body


class For(Node):
    __slots__ = ("init", "test", "update", "body")

    def __init__(
        self,
        init: Node | None,
        test: Node | None,
        update: Node | None,
        body: Node,
        line: int = 0,
    ) -> None:
        super().__init__(line)
        self.init = init
        self.test = test
        self.update = update
        self.body = body


class ForOf(Node):
    __slots__ = ("kind", "name", "iterable", "body")

    def __init__(self, kind: str, name: str, iterable: Node, body: Node, line: int = 0) -> None:
        super().__init__(line)
        self.kind = kind
        self.name = name
        self.iterable = iterable
        self.body = body


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class Throw(Node):
    __slots__ = ("value",)

    def __init__(self, value: Node, line: int = 0) -> None:
        super().__init__(line)
        self.value = value


class ExpressionStatement(Node):
    __slots__ = ("expression",)

    def __init__(self, expression: Node, line: int = 0) -> None:
        super().__init__(line)
        self.expression = expression


class Program(Node):
    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Node], line: int = 0) -> None:
        super().__init__(line)
        self.statements = list(statements)

    def functions(self) -> dict[str, FunctionDecl]:
        """Top-level function declarations by name."""
        return {
            statement.name: statement
            for statement in self.statements
            if isinstance(statement, FunctionDecl)
        }
