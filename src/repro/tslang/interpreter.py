"""Tree-walking interpreter for the TypeScript subset.

The interpreter enforces a configurable *step budget* so that buggy
generated code (infinite loops are a classic LLM failure mode) cannot hang
the code-validation pipeline; exceeding the budget raises
:class:`TsRuntimeError`.
"""

from __future__ import annotations

import functools
import math
from typing import Any, Callable, Sequence

from repro.errors import TsRuntimeError
from repro.tslang import nodes
from repro.tslang.parser import parse_program
from repro.tslang.values import (
    UNDEFINED,
    JSDate,
    JSMap,
    JSSet,
    NativeFunction,
    from_python,
    is_number,
    loose_equals,
    strict_equals,
    to_display_string,
    to_number,
    to_python,
    truthy,
    type_of,
)

DEFAULT_STEP_BUDGET = 2_000_000


class _ReturnSignal(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class ThrownValue(TsRuntimeError):
    """A value thrown by interpreted code via ``throw``."""

    def __init__(self, value: Any) -> None:
        super().__init__(f"uncaught exception: {to_display_string(value)}")
        self.value = value


class Environment:
    """A lexical scope chain."""

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: "Environment | None" = None) -> None:
        self.bindings: dict[str, Any] = {}
        self.parent = parent

    def define(self, name: str, value: Any) -> None:
        self.bindings[name] = value

    def lookup(self, name: str) -> Any:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        raise TsRuntimeError(f"'{name}' is not defined")

    def assign(self, name: str, value: Any) -> None:
        scope: Environment | None = self
        while scope is not None:
            if name in scope.bindings:
                scope.bindings[name] = value
                return
            scope = scope.parent
        raise TsRuntimeError(f"cannot assign to undeclared variable '{name}'")


class TsFunction:
    """A user-defined function or arrow closure."""

    __slots__ = ("name", "params", "body", "closure", "is_expression")

    def __init__(
        self,
        name: str,
        params: Sequence[Any],
        body: Any,
        closure: Environment,
        is_expression: bool = False,
    ) -> None:
        self.name = name
        self.params = list(params)
        self.body = body
        self.is_expression = is_expression
        self.closure = closure

    def __repr__(self) -> str:
        return f"<function {self.name or '(anonymous)'}>"


class Interpreter:
    def __init__(self, step_budget: int = DEFAULT_STEP_BUDGET) -> None:
        self.step_budget = step_budget
        self.steps = 0
        self.console_log: list[str] = []
        self.globals = Environment()
        self._install_globals()

    # -- public API ---------------------------------------------------------

    def run(self, program: nodes.Program | str) -> Environment:
        """Execute top-level statements; returns the module environment."""
        if isinstance(program, str):
            program = parse_program(program)
        module_env = Environment(self.globals)
        # Hoist function declarations (mutual recursion support).
        for statement in program.statements:
            if isinstance(statement, nodes.FunctionDecl):
                module_env.define(
                    statement.name,
                    TsFunction(statement.name, statement.params, statement.body, module_env),
                )
        for statement in program.statements:
            if not isinstance(statement, nodes.FunctionDecl):
                self._execute(statement, module_env)
        return module_env

    def call(self, fn: Any, arguments: Sequence[Any]) -> Any:
        """Call an interpreter-level callable with interpreter-level values."""
        return self._call_value(fn, list(arguments))

    # -- step accounting -----------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.step_budget:
            raise TsRuntimeError(
                f"step budget of {self.step_budget} exceeded (possible infinite loop)"
            )

    # -- statements -----------------------------------------------------------

    def _execute(self, node: nodes.Node, env: Environment) -> None:
        self._tick()
        method = _STATEMENTS.get(type(node))
        if method is None:
            raise TsRuntimeError(f"cannot execute {type(node).__name__}")
        method(self, node, env)

    def _exec_block(self, node: nodes.Block, env: Environment) -> None:
        inner = Environment(env)
        for statement in node.statements:
            self._execute(statement, inner)

    def _exec_function_decl(self, node: nodes.FunctionDecl, env: Environment) -> None:
        env.define(node.name, TsFunction(node.name, node.params, node.body, env))

    def _exec_var_decl(self, node: nodes.VarDecl, env: Environment) -> None:
        for name, init in node.declarations:
            value = self._evaluate(init, env) if init is not None else UNDEFINED
            env.define(name, value)

    def _exec_return(self, node: nodes.Return, env: Environment) -> None:
        value = self._evaluate(node.value, env) if node.value is not None else UNDEFINED
        raise _ReturnSignal(value)

    def _exec_if(self, node: nodes.If, env: Environment) -> None:
        if truthy(self._evaluate(node.test, env)):
            self._execute(node.consequent, env)
        elif node.alternate is not None:
            self._execute(node.alternate, env)

    def _exec_while(self, node: nodes.While, env: Environment) -> None:
        while truthy(self._evaluate(node.test, env)):
            try:
                self._execute(node.body, env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_do_while(self, node: nodes.DoWhile, env: Environment) -> None:
        while True:
            try:
                self._execute(node.body, env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if not truthy(self._evaluate(node.test, env)):
                break

    def _exec_for(self, node: nodes.For, env: Environment) -> None:
        loop_env = Environment(env)
        if node.init is not None:
            self._execute(node.init, loop_env)
        while node.test is None or truthy(self._evaluate(node.test, loop_env)):
            try:
                self._execute(node.body, loop_env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if node.update is not None:
                self._evaluate(node.update, loop_env)
        else:
            return

    def _exec_for_of(self, node: nodes.ForOf, env: Environment) -> None:
        iterable = self._evaluate(node.iterable, env)
        if isinstance(iterable, JSSet):
            items: Sequence[Any] = list(iterable.items)
        elif isinstance(iterable, str):
            items = list(iterable)
        elif isinstance(iterable, list):
            items = list(iterable)
        else:
            raise TsRuntimeError(f"{type_of(iterable)} is not iterable")
        for item in items:
            loop_env = Environment(env)
            loop_env.define(node.name, item)
            try:
                self._execute(node.body, loop_env)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_break(self, node: nodes.Break, env: Environment) -> None:
        raise _BreakSignal()

    def _exec_continue(self, node: nodes.Continue, env: Environment) -> None:
        raise _ContinueSignal()

    def _exec_throw(self, node: nodes.Throw, env: Environment) -> None:
        raise ThrownValue(self._evaluate(node.value, env))

    def _exec_expression_statement(self, node: nodes.ExpressionStatement, env: Environment) -> None:
        self._evaluate(node.expression, env)

    # -- expressions ------------------------------------------------------------

    def _evaluate(self, node: nodes.Node, env: Environment) -> Any:
        self._tick()
        method = _EXPRESSIONS.get(type(node))
        if method is None:
            raise TsRuntimeError(f"cannot evaluate {type(node).__name__}")
        return method(self, node, env)

    def _eval_number(self, node: nodes.NumberLit, env: Environment) -> float:
        return node.value

    def _eval_string(self, node: nodes.StringLit, env: Environment) -> str:
        return node.value

    def _eval_template(self, node: nodes.TemplateLit, env: Environment) -> str:
        parts: list[str] = []
        for part in node.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                parts.append(to_display_string(self._evaluate(part, env)))
        return "".join(parts)

    def _eval_bool(self, node: nodes.BoolLit, env: Environment) -> bool:
        return node.value

    def _eval_null(self, node: nodes.NullLit, env: Environment) -> None:
        return None

    def _eval_undefined(self, node: nodes.UndefinedLit, env: Environment) -> Any:
        return UNDEFINED

    def _eval_identifier(self, node: nodes.Identifier, env: Environment) -> Any:
        return env.lookup(node.name)

    def _eval_array(self, node: nodes.ArrayLit, env: Environment) -> list:
        result: list[Any] = []
        for element in node.elements:
            if isinstance(element, nodes.SpreadElement):
                result.extend(self._spread(element, env))
            else:
                result.append(self._evaluate(element, env))
        return result

    def _spread(self, element: nodes.SpreadElement, env: Environment) -> list:
        value = self._evaluate(element.argument, env)
        if isinstance(value, list):
            return list(value)
        if isinstance(value, JSSet):
            return list(value.items)
        if isinstance(value, str):
            return list(value)
        raise TsRuntimeError(f"cannot spread {type_of(value)}")

    def _eval_object(self, node: nodes.ObjectLit, env: Environment) -> dict:
        return {key: self._evaluate(value, env) for key, value in node.entries}

    def _eval_unary(self, node: nodes.Unary, env: Environment) -> Any:
        if node.op == "typeof":
            try:
                return type_of(self._evaluate(node.operand, env))
            except TsRuntimeError:
                return "undefined"
        value = self._evaluate(node.operand, env)
        if node.op == "!":
            return not truthy(value)
        if node.op == "-":
            return -to_number(value)
        if node.op == "+":
            return to_number(value)
        raise TsRuntimeError(f"unsupported unary operator {node.op!r}")

    def _eval_update(self, node: nodes.Update, env: Environment) -> float:
        old = to_number(self._evaluate(node.target, env))
        new = old + 1 if node.op == "++" else old - 1
        self._assign_to(node.target, new, env)
        return new if node.prefix else old

    def _eval_binary(self, node: nodes.Binary, env: Environment) -> Any:
        left = self._evaluate(node.left, env)
        right = self._evaluate(node.right, env)
        return _apply_binary(node.op, left, right)

    def _eval_logical(self, node: nodes.Logical, env: Environment) -> Any:
        left = self._evaluate(node.left, env)
        if node.op == "&&":
            return self._evaluate(node.right, env) if truthy(left) else left
        if node.op == "||":
            return left if truthy(left) else self._evaluate(node.right, env)
        # ??
        if left is None or left is UNDEFINED:
            return self._evaluate(node.right, env)
        return left

    def _eval_conditional(self, node: nodes.Conditional, env: Environment) -> Any:
        if truthy(self._evaluate(node.test, env)):
            return self._evaluate(node.consequent, env)
        return self._evaluate(node.alternate, env)

    def _eval_assign(self, node: nodes.Assign, env: Environment) -> Any:
        if node.op == "=":
            value = self._evaluate(node.value, env)
        else:
            current = self._evaluate(node.target, env)
            operand = self._evaluate(node.value, env)
            value = _apply_binary(node.op[:-1], current, operand)
        self._assign_to(node.target, value, env)
        return value

    def _assign_to(self, target: nodes.Node, value: Any, env: Environment) -> None:
        if isinstance(target, nodes.Identifier):
            env.assign(target.name, value)
            return
        if isinstance(target, nodes.Member):
            obj = self._evaluate(target.object, env)
            if isinstance(obj, dict):
                obj[target.name] = value
                return
            raise TsRuntimeError(f"cannot set property '{target.name}' on {type_of(obj)}")
        if isinstance(target, nodes.Index):
            obj = self._evaluate(target.object, env)
            index = self._evaluate(target.index, env)
            if isinstance(obj, list):
                position = int(to_number(index))
                if position < 0:
                    raise TsRuntimeError(f"negative array index {position}")
                while len(obj) <= position:
                    obj.append(UNDEFINED)
                obj[position] = value
                return
            if isinstance(obj, dict):
                obj[to_display_string(index)] = value
                return
            raise TsRuntimeError(f"cannot index-assign into {type_of(obj)}")
        raise TsRuntimeError("invalid assignment target")

    def _eval_call(self, node: nodes.Call, env: Environment) -> Any:
        callee = node.callee
        arguments: list[Any] = []
        for argument in node.arguments:
            if isinstance(argument, nodes.SpreadElement):
                arguments.extend(self._spread(argument, env))
            else:
                arguments.append(self._evaluate(argument, env))
        if isinstance(callee, nodes.Member):
            obj = self._evaluate(callee.object, env)
            return self._call_method(obj, callee.name, arguments)
        fn = self._evaluate(callee, env)
        return self._call_value(fn, arguments)

    def _eval_new(self, node: nodes.New, env: Environment) -> Any:
        if isinstance(node.callee, nodes.Identifier):
            name = node.callee.name
            arguments = [self._evaluate(argument, env) for argument in node.arguments]
            if name == "Set":
                seed = arguments[0] if arguments else []
                if isinstance(seed, JSSet):
                    seed = list(seed.items)
                if isinstance(seed, str):
                    seed = list(seed)
                if not isinstance(seed, list):
                    raise TsRuntimeError("new Set(...) takes an iterable")
                return JSSet(seed)
            if name == "Map":
                result = JSMap()
                if arguments and isinstance(arguments[0], list):
                    for pair in arguments[0]:
                        result.set(pair[0], pair[1])
                return result
            if name == "Array":
                if len(arguments) == 1 and is_number(arguments[0]):
                    return [UNDEFINED] * int(arguments[0])
                return list(arguments)
            if name == "Date":
                return JSDate(arguments[0] if arguments else None)
            if name == "Error":
                message = arguments[0] if arguments else ""
                return {"message": message, "name": "Error"}
        raise TsRuntimeError(f"cannot construct {getattr(node.callee, 'name', '?')!r}")

    def _eval_member(self, node: nodes.Member, env: Environment) -> Any:
        obj = self._evaluate(node.object, env)
        return self._member(obj, node.name)

    def _eval_index(self, node: nodes.Index, env: Environment) -> Any:
        obj = self._evaluate(node.object, env)
        index = self._evaluate(node.index, env)
        if isinstance(obj, list):
            position = int(to_number(index))
            if 0 <= position < len(obj):
                return obj[position]
            return UNDEFINED
        if isinstance(obj, str):
            position = int(to_number(index))
            if 0 <= position < len(obj):
                return obj[position]
            return UNDEFINED
        if isinstance(obj, dict):
            return obj.get(to_display_string(index), UNDEFINED)
        raise TsRuntimeError(f"cannot index {type_of(obj)}")

    def _eval_arrow(self, node: nodes.Arrow, env: Environment) -> TsFunction:
        params = [nodes.Param([name], False) for name in node.params]
        return TsFunction("", params, node.body, env, node.is_expression)

    # -- calls --------------------------------------------------------------

    def _call_value(self, fn: Any, arguments: list[Any]) -> Any:
        if isinstance(fn, NativeFunction):
            return fn.fn(*arguments)
        if isinstance(fn, TsFunction):
            return self._invoke(fn, arguments)
        raise TsRuntimeError(f"{to_display_string(fn)} is not a function")

    def _invoke(self, fn: TsFunction, arguments: list[Any]) -> Any:
        env = Environment(fn.closure)
        for position, param in enumerate(fn.params):
            supplied = arguments[position] if position < len(arguments) else UNDEFINED
            if param.destructured:
                if not isinstance(supplied, dict):
                    raise TsRuntimeError(
                        f"function '{fn.name}' expects a named-argument object"
                    )
                for name in param.names:
                    env.define(name, supplied.get(name, UNDEFINED))
            else:
                env.define(param.names[0], supplied)
        if fn.is_expression:
            return self._evaluate(fn.body, env)
        try:
            self._exec_block(fn.body, env)
        except _ReturnSignal as signal:
            return signal.value
        return UNDEFINED

    def _callback(self, fn: Any) -> Callable[..., Any]:
        """Wrap an interpreter callable for use by native array methods."""

        def call(*arguments: Any) -> Any:
            return self._call_value(fn, list(arguments))

        return call

    # -- member dispatch -------------------------------------------------------

    def _member(self, obj: Any, name: str) -> Any:
        if isinstance(obj, _CallableObject):
            if name in obj.members:
                return obj.members[name]
            raise TsRuntimeError(f"{obj.name} has no member {name!r}")
        if isinstance(obj, str):
            return self._string_member(obj, name)
        if isinstance(obj, list):
            return self._array_member(obj, name)
        if isinstance(obj, dict):
            if name in obj:
                return obj[name]
            if name == "hasOwnProperty":
                return NativeFunction(name, lambda key: to_display_string(key) in obj)
            return UNDEFINED
        if isinstance(obj, JSSet):
            if name == "size":
                return float(obj.size)
            if name in ("add", "has", "delete"):
                return NativeFunction(name, getattr(obj, name))
            raise TsRuntimeError(f"Set has no member {name!r}")
        if isinstance(obj, JSMap):
            if name == "size":
                return float(obj.size)
            if name in ("get", "set", "has", "delete"):
                return NativeFunction(name, getattr(obj, name))
            if name == "keys":
                return NativeFunction(name, lambda: [k for k, _ in obj.entries])
            if name == "values":
                return NativeFunction(name, lambda: [v for _, v in obj.entries])
            raise TsRuntimeError(f"Map has no member {name!r}")
        if isinstance(obj, JSDate):
            if name == "getTime":
                return NativeFunction(name, obj.get_time)
            raise TsRuntimeError(f"Date has no member {name!r}")
        if is_number(obj):
            return self._number_member(float(obj), name)
        raise TsRuntimeError(f"cannot read property {name!r} of {to_display_string(obj)}")

    def _call_method(self, obj: Any, name: str, arguments: list[Any]) -> Any:
        member = self._member(obj, name)
        return self._call_value(member, arguments)

    def _number_member(self, value: float, name: str) -> Any:
        if name == "toFixed":
            return NativeFunction(name, lambda digits=0.0: f"{value:.{int(digits)}f}")
        if name == "toString":
            return NativeFunction(name, lambda: to_display_string(value))
        raise TsRuntimeError(f"number has no member {name!r}")

    def _string_member(self, value: str, name: str) -> Any:
        if name == "length":
            return float(len(value))
        methods: dict[str, Callable[..., Any]] = {
            "split": lambda sep=UNDEFINED: (
                list(value) if sep == "" else ([value] if sep is UNDEFINED else value.split(to_display_string(sep)))
            ),
            "toUpperCase": lambda: value.upper(),
            "toLowerCase": lambda: value.lower(),
            "charAt": lambda index=0.0: value[int(index)] if 0 <= int(index) < len(value) else "",
            "charCodeAt": lambda index=0.0: float(ord(value[int(index)])) if 0 <= int(index) < len(value) else float("nan"),
            "codePointAt": lambda index=0.0: float(ord(value[int(index)])) if 0 <= int(index) < len(value) else UNDEFINED,
            "indexOf": lambda needle, start=0.0: float(value.find(to_display_string(needle), int(start))),
            "lastIndexOf": lambda needle: float(value.rfind(to_display_string(needle))),
            "includes": lambda needle: to_display_string(needle) in value,
            "startsWith": lambda prefix: value.startswith(to_display_string(prefix)),
            "endsWith": lambda suffix: value.endswith(to_display_string(suffix)),
            "slice": lambda start=0.0, end=UNDEFINED: _slice_sequence(value, start, end),
            "substring": lambda start=0.0, end=UNDEFINED: _substring(value, start, end),
            "trim": lambda: value.strip(),
            "trimStart": lambda: value.lstrip(),
            "trimEnd": lambda: value.rstrip(),
            "replace": lambda old, new: value.replace(to_display_string(old), to_display_string(new), 1),
            "replaceAll": lambda old, new: value.replace(to_display_string(old), to_display_string(new)),
            "repeat": lambda count: value * int(count),
            "padStart": lambda width, fill=" ": value.rjust(int(width), to_display_string(fill)[0] if fill else " "),
            "padEnd": lambda width, fill=" ": value.ljust(int(width), to_display_string(fill)[0] if fill else " "),
            "concat": lambda *others: value + "".join(to_display_string(other) for other in others),
            "toString": lambda: value,
            "localeCompare": lambda other: float((value > other) - (value < other)),
        }
        if name in methods:
            return NativeFunction(name, methods[name])
        raise TsRuntimeError(f"string has no member {name!r}")

    def _array_member(self, value: list, name: str) -> Any:
        if name == "length":
            return float(len(value))
        interp = self

        def sort(comparator: Any = UNDEFINED) -> list:
            if comparator is UNDEFINED:
                value.sort(key=to_display_string)
            else:
                compare = interp._callback(comparator)

                def cmp(a: Any, b: Any) -> int:
                    result = to_number(compare(a, b))
                    if result < 0:
                        return -1
                    if result > 0:
                        return 1
                    return 0

                value.sort(key=functools.cmp_to_key(cmp))
            return value

        def reduce(callback: Any, *seed: Any) -> Any:
            compute = interp._callback(callback)
            items = list(value)
            if seed:
                accumulator = seed[0]
                start = 0
            else:
                if not items:
                    raise TsRuntimeError("reduce of empty array with no initial value")
                accumulator = items[0]
                start = 1
            for offset in range(start, len(items)):
                accumulator = compute(accumulator, items[offset], float(offset))
            return accumulator

        methods: dict[str, Callable[..., Any]] = {
            "push": lambda *items: (value.extend(items), float(len(value)))[1],
            "pop": lambda: value.pop() if value else UNDEFINED,
            "shift": lambda: value.pop(0) if value else UNDEFINED,
            "unshift": lambda *items: (value.__setitem__(slice(0, 0), list(items)), float(len(value)))[1],
            "map": lambda callback: [
                interp._callback(callback)(item, float(index), value)
                for index, item in enumerate(list(value))
            ],
            "filter": lambda callback: [
                item
                for index, item in enumerate(list(value))
                if truthy(interp._callback(callback)(item, float(index), value))
            ],
            "forEach": lambda callback: _foreach(interp._callback(callback), value),
            "reduce": reduce,
            "sort": sort,
            "reverse": lambda: (value.reverse(), value)[1],
            "slice": lambda start=0.0, end=UNDEFINED: _slice_sequence(value, start, end),
            "splice": lambda start, count=UNDEFINED, *items: _splice(value, start, count, items),
            "indexOf": lambda needle: _index_of(value, needle),
            "lastIndexOf": lambda needle: _last_index_of(value, needle),
            "includes": lambda needle: any(strict_equals(item, needle) for item in value),
            "join": lambda sep=",": to_display_string(sep).join(
                "" if item is None or item is UNDEFINED else to_display_string(item) for item in value
            ),
            "concat": lambda *others: _concat(value, others),
            "some": lambda callback: any(
                truthy(interp._callback(callback)(item, float(index), value))
                for index, item in enumerate(list(value))
            ),
            "every": lambda callback: all(
                truthy(interp._callback(callback)(item, float(index), value))
                for index, item in enumerate(list(value))
            ),
            "find": lambda callback: next(
                (
                    item
                    for index, item in enumerate(list(value))
                    if truthy(interp._callback(callback)(item, float(index), value))
                ),
                UNDEFINED,
            ),
            "findIndex": lambda callback: next(
                (
                    float(index)
                    for index, item in enumerate(list(value))
                    if truthy(interp._callback(callback)(item, float(index), value))
                ),
                -1.0,
            ),
            "flat": lambda depth=1.0: _flat(value, int(depth)),
            "fill": lambda item, start=0.0, end=UNDEFINED: _fill(value, item, start, end),
            "keys": lambda: [float(index) for index in range(len(value))],
        }
        if name in methods:
            return NativeFunction(name, methods[name])
        raise TsRuntimeError(f"array has no member {name!r}")

    # -- globals ---------------------------------------------------------------

    def _install_globals(self) -> None:
        env = self.globals
        math_object = {
            "floor": NativeFunction("floor", lambda x: float(math.floor(to_number(x)))),
            "ceil": NativeFunction("ceil", lambda x: float(math.ceil(to_number(x)))),
            "round": NativeFunction("round", lambda x: float(math.floor(to_number(x) + 0.5))),
            "trunc": NativeFunction("trunc", lambda x: float(math.trunc(to_number(x)))),
            "abs": NativeFunction("abs", lambda x: abs(to_number(x))),
            "sqrt": NativeFunction("sqrt", lambda x: math.sqrt(to_number(x))),
            "cbrt": NativeFunction("cbrt", lambda x: math.copysign(abs(to_number(x)) ** (1 / 3), to_number(x))),
            "pow": NativeFunction("pow", lambda x, y: float(to_number(x) ** to_number(y))),
            "max": NativeFunction("max", lambda *xs: max((to_number(x) for x in xs), default=float("-inf"))),
            "min": NativeFunction("min", lambda *xs: min((to_number(x) for x in xs), default=float("inf"))),
            "log": NativeFunction("log", lambda x: math.log(to_number(x))),
            "log2": NativeFunction("log2", lambda x: math.log2(to_number(x))),
            "log10": NativeFunction("log10", lambda x: math.log10(to_number(x))),
            "exp": NativeFunction("exp", lambda x: math.exp(to_number(x))),
            "sign": NativeFunction("sign", lambda x: float((to_number(x) > 0) - (to_number(x) < 0))),
            "random": NativeFunction("random", lambda: 0.5),  # deterministic by design
            "hypot": NativeFunction("hypot", lambda *xs: math.hypot(*[to_number(x) for x in xs])),
            "PI": math.pi,
            "E": math.e,
        }
        env.define("Math", math_object)
        env.define(
            "JSON",
            {
                "stringify": NativeFunction("stringify", _json_stringify),
                "parse": NativeFunction("parse", _json_parse),
            },
        )
        number_object = {
            "isInteger": NativeFunction(
                "isInteger", lambda x: is_number(x) and float(x).is_integer()
            ),
            "isFinite": NativeFunction(
                "isFinite", lambda x: is_number(x) and math.isfinite(float(x))
            ),
            "isNaN": NativeFunction("isNaN", lambda x: is_number(x) and math.isnan(float(x))),
            "parseFloat": NativeFunction("parseFloat", lambda x: _parse_float(x)),
            "parseInt": NativeFunction("parseInt", lambda x, base=10.0: _parse_int(x, base)),
            "MAX_SAFE_INTEGER": float(2**53 - 1),
            "MIN_SAFE_INTEGER": float(-(2**53 - 1)),
            "EPSILON": 2.220446049250313e-16,
            "POSITIVE_INFINITY": float("inf"),
            "NEGATIVE_INFINITY": float("-inf"),
        }
        env.define("Number", _CallableObject("Number", to_number, number_object))
        env.define("String", _CallableObject("String", to_display_string, {
            "fromCharCode": NativeFunction(
                "fromCharCode", lambda *codes: "".join(chr(int(to_number(code))) for code in codes)
            ),
        }))
        env.define("Boolean", NativeFunction("Boolean", truthy))
        env.define("parseInt", NativeFunction("parseInt", lambda x, base=10.0: _parse_int(x, base)))
        env.define("parseFloat", NativeFunction("parseFloat", _parse_float))
        env.define("isNaN", NativeFunction("isNaN", lambda x: math.isnan(to_number(x))))
        env.define("isFinite", NativeFunction("isFinite", lambda x: math.isfinite(to_number(x))))
        env.define(
            "Array",
            _CallableObject(
                "Array",
                lambda *xs: list(xs),
                {
                    "isArray": NativeFunction("isArray", lambda x: isinstance(x, list)),
                    "from": NativeFunction("from", _array_from(self)),
                    "of": NativeFunction("of", lambda *xs: list(xs)),
                },
            ),
        )
        env.define(
            "Object",
            {
                "keys": NativeFunction("keys", lambda obj: list(obj.keys()) if isinstance(obj, dict) else []),
                "values": NativeFunction("values", lambda obj: list(obj.values()) if isinstance(obj, dict) else []),
                "entries": NativeFunction(
                    "entries",
                    lambda obj: [[key, val] for key, val in obj.items()] if isinstance(obj, dict) else [],
                ),
                "assign": NativeFunction("assign", _object_assign),
                "fromEntries": NativeFunction(
                    "fromEntries",
                    lambda pairs: {to_display_string(pair[0]): pair[1] for pair in pairs},
                ),
            },
        )
        env.define(
            "console",
            {"log": NativeFunction("log", self._console_log), "error": NativeFunction("error", self._console_log)},
        )
        env.define("Infinity", float("inf"))
        env.define("NaN", float("nan"))
        env.define("globalThis", {})

    def _console_log(self, *arguments: Any) -> Any:
        self.console_log.append(" ".join(to_display_string(argument) for argument in arguments))
        return UNDEFINED


class _CallableObject(NativeFunction):
    """A native function that also exposes static members (e.g. ``Number``)."""

    __slots__ = ("members",)

    def __init__(self, name: str, fn: Callable[..., Any], members: dict[str, Any]) -> None:
        super().__init__(name, fn)
        self.members = members


# -- helper functions ---------------------------------------------------------


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        if isinstance(left, str) or isinstance(right, str):
            return to_display_string(left) + to_display_string(right)
        if isinstance(left, list) or isinstance(right, list):
            return to_display_string(left) + to_display_string(right)
        return to_number(left) + to_number(right)
    if op == "-":
        return to_number(left) - to_number(right)
    if op == "*":
        return to_number(left) * to_number(right)
    if op == "/":
        divisor = to_number(right)
        dividend = to_number(left)
        if divisor == 0:
            if dividend == 0 or math.isnan(dividend):
                return float("nan")
            return math.copysign(float("inf"), dividend) * math.copysign(1.0, divisor)
        return dividend / divisor
    if op == "%":
        divisor = to_number(right)
        dividend = to_number(left)
        if divisor == 0 or math.isnan(dividend) or math.isinf(dividend):
            return float("nan")
        return math.fmod(dividend, divisor)
    if op == "**":
        return float(to_number(left) ** to_number(right))
    if op == "===":
        return strict_equals(left, right)
    if op == "!==":
        return not strict_equals(left, right)
    if op == "==":
        return loose_equals(left, right)
    if op == "!=":
        return not loose_equals(left, right)
    if op in ("<", "<=", ">", ">="):
        if isinstance(left, str) and isinstance(right, str):
            a, b = left, right
        else:
            a, b = to_number(left), to_number(right)
            if math.isnan(a) or math.isnan(b):
                return False
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        return a >= b
    raise TsRuntimeError(f"unsupported binary operator {op!r}")


def _slice_sequence(value: Any, start: Any, end: Any) -> Any:
    length = len(value)
    begin = int(to_number(start))
    if begin < 0:
        begin = max(length + begin, 0)
    if end is UNDEFINED:
        stop = length
    else:
        stop = int(to_number(end))
        if stop < 0:
            stop = max(length + stop, 0)
    return value[begin:stop]


def _substring(value: str, start: Any, end: Any) -> str:
    length = len(value)
    begin = max(0, min(int(to_number(start)), length))
    stop = length if end is UNDEFINED else max(0, min(int(to_number(end)), length))
    if begin > stop:
        begin, stop = stop, begin
    return value[begin:stop]


def _splice(value: list, start: Any, count: Any, items: tuple) -> list:
    length = len(value)
    begin = int(to_number(start))
    if begin < 0:
        begin = max(length + begin, 0)
    how_many = length - begin if count is UNDEFINED else max(0, int(to_number(count)))
    removed = value[begin:begin + how_many]
    value[begin:begin + how_many] = list(items)
    return removed


def _index_of(value: list, needle: Any) -> float:
    for index, item in enumerate(value):
        if strict_equals(item, needle):
            return float(index)
    return -1.0


def _last_index_of(value: list, needle: Any) -> float:
    for index in range(len(value) - 1, -1, -1):
        if strict_equals(value[index], needle):
            return float(index)
    return -1.0


def _concat(value: list, others: tuple) -> list:
    result = list(value)
    for other in others:
        if isinstance(other, list):
            result.extend(other)
        else:
            result.append(other)
    return result


def _flat(value: list, depth: int) -> list:
    result: list[Any] = []
    for item in value:
        if isinstance(item, list) and depth > 0:
            result.extend(_flat(item, depth - 1))
        else:
            result.append(item)
    return result


def _fill(value: list, item: Any, start: Any, end: Any) -> list:
    length = len(value)
    begin = int(to_number(start))
    stop = length if end is UNDEFINED else int(to_number(end))
    for index in range(max(begin, 0), min(stop, length)):
        value[index] = item
    return value


def _foreach(callback: Callable[..., Any], value: list) -> Any:
    for index, item in enumerate(list(value)):
        callback(item, float(index), value)
    return UNDEFINED


def _parse_int(value: Any, base: Any = 10.0) -> float:
    text = to_display_string(value).strip()
    sign = 1
    if text[:1] in "+-":
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    radix = int(to_number(base)) or 10
    alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"[:radix]
    for char in text.lower():
        if char in alphabet:
            digits += char
        else:
            break
    if not digits:
        return float("nan")
    return float(sign * int(digits, radix))


def _parse_float(value: Any) -> float:
    text = to_display_string(value).strip()
    import re

    match = re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", text)
    if not match:
        return float("nan")
    return float(match.group(0))


def _json_stringify(value: Any, *_ignored: Any) -> str:
    import json as _json

    return _json.dumps(to_python(value))


def _json_parse(text: Any) -> Any:
    import json as _json

    return from_python(_json.loads(to_display_string(text)))


def _object_assign(target: Any, *sources: Any) -> Any:
    if not isinstance(target, dict):
        raise TsRuntimeError("Object.assign target must be an object")
    for source in sources:
        if isinstance(source, dict):
            target.update(source)
    return target


def _array_from(interp: Interpreter) -> Callable[..., list]:
    def array_from(value: Any, mapper: Any = UNDEFINED) -> list:
        if isinstance(value, JSSet):
            items = list(value.items)
        elif isinstance(value, str):
            items = list(value)
        elif isinstance(value, list):
            items = list(value)
        elif isinstance(value, dict) and "length" in value:
            items = [UNDEFINED] * int(to_number(value["length"]))
        else:
            raise TsRuntimeError("Array.from takes an iterable")
        if mapper is UNDEFINED:
            return items
        call = interp._callback(mapper)
        return [call(item, float(index)) for index, item in enumerate(items)]

    return array_from


# Dispatch tables (populated after the class body so the methods exist).
_STATEMENTS = {
    nodes.Block: Interpreter._exec_block,
    nodes.FunctionDecl: Interpreter._exec_function_decl,
    nodes.VarDecl: Interpreter._exec_var_decl,
    nodes.Return: Interpreter._exec_return,
    nodes.If: Interpreter._exec_if,
    nodes.While: Interpreter._exec_while,
    nodes.DoWhile: Interpreter._exec_do_while,
    nodes.For: Interpreter._exec_for,
    nodes.ForOf: Interpreter._exec_for_of,
    nodes.Break: Interpreter._exec_break,
    nodes.Continue: Interpreter._exec_continue,
    nodes.Throw: Interpreter._exec_throw,
    nodes.ExpressionStatement: Interpreter._exec_expression_statement,
}

_EXPRESSIONS = {
    nodes.NumberLit: Interpreter._eval_number,
    nodes.StringLit: Interpreter._eval_string,
    nodes.TemplateLit: Interpreter._eval_template,
    nodes.BoolLit: Interpreter._eval_bool,
    nodes.NullLit: Interpreter._eval_null,
    nodes.UndefinedLit: Interpreter._eval_undefined,
    nodes.Identifier: Interpreter._eval_identifier,
    nodes.ArrayLit: Interpreter._eval_array,
    nodes.ObjectLit: Interpreter._eval_object,
    nodes.Unary: Interpreter._eval_unary,
    nodes.Update: Interpreter._eval_update,
    nodes.Binary: Interpreter._eval_binary,
    nodes.Logical: Interpreter._eval_logical,
    nodes.Conditional: Interpreter._eval_conditional,
    nodes.Assign: Interpreter._eval_assign,
    nodes.Call: Interpreter._eval_call,
    nodes.New: Interpreter._eval_new,
    nodes.Member: Interpreter._eval_member,
    nodes.Index: Interpreter._eval_index,
    nodes.Arrow: Interpreter._eval_arrow,
}
