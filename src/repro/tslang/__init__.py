"""A TypeScript-subset front end and interpreter.

This substrate stands in for the Node/TypeScript toolchain the paper used
to run generated TypeScript: lexer -> parser -> tree-walking interpreter,
with a step budget so buggy generated code cannot hang validation.
"""

from repro.tslang.interpreter import DEFAULT_STEP_BUDGET, Interpreter, ThrownValue
from repro.tslang.lexer import tokenize
from repro.tslang.module import TsModule, load_module
from repro.tslang.parser import parse_expression, parse_program
from repro.tslang.printer import print_expression, print_program
from repro.tslang.values import UNDEFINED, JSSet, from_python, to_python

__all__ = [
    "tokenize",
    "parse_program",
    "parse_expression",
    "print_program",
    "print_expression",
    "Interpreter",
    "TsModule",
    "load_module",
    "ThrownValue",
    "UNDEFINED",
    "JSSet",
    "to_python",
    "from_python",
    "DEFAULT_STEP_BUDGET",
]
