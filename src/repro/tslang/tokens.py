"""Token definitions for the TypeScript-subset lexer."""

from __future__ import annotations

from typing import Any

# Token kinds.
NUMBER = "number"
STRING = "string"
TEMPLATE = "template"  # value is a list of str | (expr-source str) parts
IDENT = "ident"
KEYWORD = "keyword"
PUNCT = "punct"
EOF = "eof"

KEYWORDS = frozenset(
    {
        "export",
        "function",
        "return",
        "let",
        "const",
        "var",
        "if",
        "else",
        "for",
        "while",
        "do",
        "of",
        "in",
        "new",
        "true",
        "false",
        "null",
        "undefined",
        "typeof",
        "break",
        "continue",
        "throw",
    }
)

# Multi-character punctuators, longest first so maximal munch works.
PUNCTUATORS = (
    "===",
    "!==",
    "**=",
    "...",
    "=>",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "??",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "**",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    ".",
    "?",
    "!",
    "|",
    "&",
)


class Token:
    """One lexical token with its source position (1-based line/column)."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind: str, value: Any, line: int, column: int) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def is_punct(self, value: str) -> bool:
        return self.kind == PUNCT and self.value == value

    def is_keyword(self, value: str) -> bool:
        return self.kind == KEYWORD and self.value == value

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"
