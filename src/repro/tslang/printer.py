"""Pretty-printer (unparser) for the TypeScript subset.

Renders an AST back to source text.  The round-trip guarantee is
*semantic*: re-parsing printed output yields a program with identical
behaviour (tests pin this with property tests).  Used for cache
normalization and for debugging generated code.
"""

from __future__ import annotations

from repro.tslang import nodes

_INDENT = "    "

# Operator precedence for minimal parenthesization; mirrors the parser.
_PRECEDENCE = {
    "??": 1,
    "||": 2,
    "&&": 3,
    "===": 4,
    "!==": 4,
    "==": 4,
    "!=": 4,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "%": 7,
    "**": 8,
}
_UNARY_PREC = 9
_POSTFIX_PREC = 10


def print_program(program: nodes.Program) -> str:
    """Render a whole compilation unit."""
    return "\n".join(_statement(statement, 0) for statement in program.statements) + "\n"


def print_expression(expression: nodes.Node) -> str:
    """Render a single expression."""
    return _expr(expression, 0)


# -- statements ---------------------------------------------------------------


def _statement(node: nodes.Node, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(node, nodes.FunctionDecl):
        export = "export " if node.exported else ""
        params = ", ".join(_param(param) for param in node.params)
        returns = f": {node.return_annotation}" if node.return_annotation else ""
        body = _block_body(node.body, depth)
        return f"{pad}{export}function {node.name}({params}){returns} {{\n{body}{pad}}}"
    if isinstance(node, nodes.VarDecl):
        decls = ", ".join(
            f"{name} = {_expr(init, 0)}" if init is not None else name
            for name, init in node.declarations
        )
        return f"{pad}{node.kind} {decls};"
    if isinstance(node, nodes.Return):
        if node.value is None:
            return f"{pad}return;"
        return f"{pad}return {_expr(node.value, 0)};"
    if isinstance(node, nodes.If):
        out = f"{pad}if ({_expr(node.test, 0)}) {_branch(node.consequent, depth)}"
        if node.alternate is not None:
            out += f" else {_branch(node.alternate, depth)}"
        return out
    if isinstance(node, nodes.While):
        return f"{pad}while ({_expr(node.test, 0)}) {_branch(node.body, depth)}"
    if isinstance(node, nodes.DoWhile):
        return f"{pad}do {_branch(node.body, depth)} while ({_expr(node.test, 0)});"
    if isinstance(node, nodes.For):
        init = ""
        if isinstance(node.init, nodes.VarDecl):
            init = _statement(node.init, 0).strip().rstrip(";")
        elif isinstance(node.init, nodes.ExpressionStatement):
            init = _expr(node.init.expression, 0)
        test = _expr(node.test, 0) if node.test is not None else ""
        update = _expr(node.update, 0) if node.update is not None else ""
        return f"{pad}for ({init}; {test}; {update}) {_branch(node.body, depth)}"
    if isinstance(node, nodes.ForOf):
        return (
            f"{pad}for ({node.kind} {node.name} of {_expr(node.iterable, 0)}) "
            f"{_branch(node.body, depth)}"
        )
    if isinstance(node, nodes.Break):
        return f"{pad}break;"
    if isinstance(node, nodes.Continue):
        return f"{pad}continue;"
    if isinstance(node, nodes.Throw):
        return f"{pad}throw {_expr(node.value, 0)};"
    if isinstance(node, nodes.Block):
        return f"{pad}{{\n{_block_body(node, depth)}{pad}}}"
    if isinstance(node, nodes.ExpressionStatement):
        return f"{pad}{_expr(node.expression, 0)};"
    raise TypeError(f"cannot print statement {type(node).__name__}")


def _branch(node: nodes.Node, depth: int) -> str:
    """An if/loop body: blocks inline, single statements wrapped in braces."""
    if isinstance(node, nodes.Block):
        return f"{{\n{_block_body(node, depth)}{_INDENT * depth}}}"
    inner = _statement(node, depth + 1)
    return "{\n" + inner + "\n" + _INDENT * depth + "}"


def _block_body(block: nodes.Block, depth: int) -> str:
    lines = [_statement(statement, depth + 1) for statement in block.statements]
    return "".join(line + "\n" for line in lines)


def _param(param: nodes.Param) -> str:
    if param.destructured:
        names = ", ".join(param.names)
        annotation = f": {param.annotation}" if param.annotation else ""
        return f"{{{names}}}{annotation}"
    annotation = f": {param.annotation}" if param.annotation else ""
    return f"{param.names[0]}{annotation}"


# -- expressions --------------------------------------------------------------


def _expr(node: nodes.Node, prec: int) -> str:
    if isinstance(node, nodes.NumberLit):
        value = node.value
        text = str(int(value)) if float(value).is_integer() else repr(value)
        return _wrap(text, _POSTFIX_PREC, prec) if value < 0 else text
    if isinstance(node, nodes.StringLit):
        return _quote(node.value)
    if isinstance(node, nodes.TemplateLit):
        parts = []
        for part in node.parts:
            if isinstance(part, str):
                parts.append(part.replace("`", "\\`").replace("$", "\\$"))
            else:
                parts.append("${" + _expr(part, 0) + "}")
        return "`" + "".join(parts) + "`"
    if isinstance(node, nodes.BoolLit):
        return "true" if node.value else "false"
    if isinstance(node, nodes.NullLit):
        return "null"
    if isinstance(node, nodes.UndefinedLit):
        return "undefined"
    if isinstance(node, nodes.Identifier):
        return node.name
    if isinstance(node, nodes.ArrayLit):
        return "[" + ", ".join(_element(element) for element in node.elements) + "]"
    if isinstance(node, nodes.ObjectLit):
        entries = ", ".join(f"{_key(key)}: {_expr(value, 0)}" for key, value in node.entries)
        rendered = "{" + entries + "}"
        # An object literal at statement head parses as a block; caller
        # context cannot be known here, so always parenthesize defensively.
        return f"({rendered})"
    if isinstance(node, nodes.Unary):
        operand = _expr(node.operand, _UNARY_PREC)
        spacer = " " if node.op == "typeof" else ""
        return _wrap(f"{node.op}{spacer}{operand}", _UNARY_PREC, prec)
    if isinstance(node, nodes.Update):
        target = _expr(node.target, _POSTFIX_PREC)
        text = f"{node.op}{target}" if node.prefix else f"{target}{node.op}"
        return _wrap(text, _UNARY_PREC, prec)
    if isinstance(node, (nodes.Binary, nodes.Logical)):
        own = _PRECEDENCE[node.op]
        left = _expr(node.left, own)
        right = _expr(node.right, own + 1)
        return _wrap(f"{left} {node.op} {right}", own, prec)
    if isinstance(node, nodes.Conditional):
        text = (
            f"{_expr(node.test, 1)} ? {_expr(node.consequent, 0)} : "
            f"{_expr(node.alternate, 0)}"
        )
        return _wrap(text, 0, prec)
    if isinstance(node, nodes.Assign):
        text = f"{_expr(node.target, _POSTFIX_PREC)} {node.op} {_expr(node.value, 0)}"
        return _wrap(text, 0, prec)
    if isinstance(node, nodes.Call):
        callee = _expr(node.callee, _POSTFIX_PREC)
        arguments = ", ".join(_element(argument) for argument in node.arguments)
        return f"{callee}({arguments})"
    if isinstance(node, nodes.New):
        callee = _expr(node.callee, _POSTFIX_PREC)
        arguments = ", ".join(_expr(argument, 0) for argument in node.arguments)
        return f"new {callee}({arguments})"
    if isinstance(node, nodes.Member):
        return f"{_expr(node.object, _POSTFIX_PREC)}.{node.name}"
    if isinstance(node, nodes.Index):
        return f"{_expr(node.object, _POSTFIX_PREC)}[{_expr(node.index, 0)}]"
    if isinstance(node, nodes.Arrow):
        params = ", ".join(node.params)
        head = f"({params})"
        if node.is_expression:
            body = _expr(node.body, 0)
            if isinstance(node.body, nodes.ObjectLit):
                pass  # already parenthesized by the ObjectLit case
            return _wrap(f"{head} => {body}", 0, prec)
        inner = _block_body(node.body, 0)
        return _wrap(f"{head} => {{\n{inner}}}", 0, prec)
    if isinstance(node, nodes.SpreadElement):
        return f"...{_expr(node.argument, 0)}"
    raise TypeError(f"cannot print expression {type(node).__name__}")


def _element(node: nodes.Node) -> str:
    if isinstance(node, nodes.SpreadElement):
        return f"...{_expr(node.argument, 0)}"
    return _expr(node, 0)


def _key(key: str) -> str:
    if key.isidentifier():
        return key
    return _quote(key)


def _quote(text: str) -> str:
    escaped = (
        text.replace("\\", "\\\\")
        .replace("'", "\\'")
        .replace("\n", "\\n")
        .replace("\t", "\\t")
        .replace("\r", "\\r")
    )
    return f"'{escaped}'"


def _wrap(text: str, own: int, surrounding: int) -> str:
    if own < surrounding:
        return f"({text})"
    return text
