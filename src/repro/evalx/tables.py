"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned; everything else left-aligned.
    """
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(fill: str = "-", joint: str = "+") -> str:
        return joint + joint.join(fill * (width + 2) for width in widths) + joint

    def render_row(values: Sequence[str], source_row: Sequence[Any] | None = None) -> str:
        parts = []
        for index, value in enumerate(values):
            raw = source_row[index] if source_row is not None else None
            if isinstance(raw, (int, float)) and not isinstance(raw, bool):
                parts.append(" " + value.rjust(widths[index]) + " ")
            else:
                parts.append(" " + value.ljust(widths[index]) + " ")
        return "|" + "|".join(parts) + "|"

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line())
    out.append(render_row(list(headers)))
    out.append(line("="))
    for row, rendered in zip(rows, cells):
        out.append(render_row(rendered, row))
    out.append(line())
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.2f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)
