"""Evaluation harness: metrics, rendering, and the paper's experiments."""

from repro.evalx.figures import (
    csv_text,
    render_bars,
    render_histogram,
    render_scatter,
    write_csv,
)
from repro.evalx.loc import count_loc, count_python_loc, count_typescript_loc
from repro.evalx.tables import render_table
from repro.evalx.timing import Mean, measure_execution_s

__all__ = [
    "count_loc",
    "count_python_loc",
    "count_typescript_loc",
    "render_table",
    "render_histogram",
    "render_scatter",
    "render_bars",
    "write_csv",
    "csv_text",
    "measure_execution_s",
    "Mean",
]
