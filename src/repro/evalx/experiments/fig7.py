"""Experiment E4 -- Figure 7: response types used by the Evals benchmarks.

Counts each benchmark's declared answer type in two ways, as the paper
does: once as the *top-level* type and once counting *all* component
types reachable in the type tree (so ``('yes' | 'no')`` contributes one
union and two literals to the all-types count).
"""

from __future__ import annotations

from collections import Counter

from repro.datasets.openai_evals import all_benchmarks
from repro.evalx.figures import csv_text, render_bars

#: Display order follows Figure 7's x-axis.
CATEGORY_ORDER = ["boolean", "object", "Array", "tuple", "literal", "number", "string", "union"]


class Fig7Result:
    def __init__(self, top_level: Counter, all_types: Counter) -> None:
        self.top_level = top_level
        self.all_types = all_types

    def categories(self) -> list[str]:
        seen = set(self.top_level) | set(self.all_types)
        ordered = [category for category in CATEGORY_ORDER if category in seen]
        ordered.extend(sorted(seen - set(ordered)))
        return ordered


def run() -> Fig7Result:
    top_level: Counter = Counter()
    all_types: Counter = Counter()
    for benchmark in all_benchmarks():
        top_level[benchmark.answer_type.tag] += 1
        for node in benchmark.answer_type.walk():
            all_types[node.tag] += 1
    return Fig7Result(top_level, all_types)


def render(result: Fig7Result) -> str:
    categories = result.categories()
    chart = render_bars(
        categories,
        {
            "all": [result.all_types.get(category, 0) for category in categories],
            "top-level": [result.top_level.get(category, 0) for category in categories],
        },
        title="Figure 7: number of uses for each type",
    )
    rows = [
        (category, result.top_level.get(category, 0), result.all_types.get(category, 0))
        for category in categories
    ]
    series = csv_text(["type", "top_level_uses", "all_uses"], rows)
    top_most = result.top_level.most_common(3)
    summary = (
        "\nMost frequent top-level types: "
        + ", ".join(f"{name} ({count})" for name, count in top_most)
        + " (paper: string, then number and boolean)\n"
    )
    return chart + summary + "\nCSV series:\n" + series


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
