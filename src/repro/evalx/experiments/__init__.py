"""One module per paper artifact.

============  ==========================================================
Module        Regenerates
============  ==========================================================
``table2``    Table II  -- 50 common coding tasks (LOC + retries)
``fig5``      Figure 5  -- HumanEval generated vs hand-written LOC
``fig6``      Figure 6  -- OpenAI-Evals prompt-length reduction
``fig7``      Figure 7  -- response-type usage census
``table3``    Table III -- GSM8K direct answering vs generated code
``ablation_prompt``    E6 -- feedback retries under corruption
``ablation_examples``  E7 -- RQ2, validation examples vs shipped bugs
============  ==========================================================

Each module exposes ``run()`` (returns a result object), ``render(result)``
(the report text), and ``main()`` (prints), and runs standalone via
``python -m repro.evalx.experiments.<name>``.
"""

from repro.evalx.experiments import (
    ablation_examples,
    ablation_prompt,
    fig5,
    fig6,
    fig7,
    table2,
    table3,
)

__all__ = [
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "table3",
    "ablation_prompt",
    "ablation_examples",
]
