"""Experiment E2 -- Figure 5: HumanEval generated vs hand-written LOC.

For each task the experiment writes the AskIt one-liner (template + train
examples + test examples, the source the paper counts as 23.74 lines on
average), compiles it, and compares the generated function's LOC against
the hand-written canonical solution.  The paper reports an 84.8 % success
rate, generated code 1.27x the hand-written LOC on average, and 35.3 % of
tasks where generated code is *shorter*.
"""

from __future__ import annotations

import json

from repro.core import config_override, define
from repro.datasets.humaneval import HumanEvalTask, all_tasks
from repro.errors import CodeGenerationError
from repro.evalx.figures import csv_text, render_scatter
from repro.evalx.loc import count_python_loc
from repro.llm import ChatClient, NoisePolicy

MODEL = "sim-gpt-3.5-turbo-16k"

DEFAULT_NOISE = NoisePolicy(direct_corruption_rate=0.0, buggy_code_rate=0.15, seed=5)


def askit_source_text(task: HumanEvalTask) -> str:
    """The AskIt source a user would write for this task.

    One ``define`` call whose arguments include the template and the test
    examples -- this is what makes the paper's "source LOC" (23.74 avg)
    larger than the generated code.
    """
    lines = [
        f"{task.entry_point} = define(",
        "    t.infer_from_examples,",
        f"    {task.description!r},",
        "    test_examples=[",
    ]
    for example in task.tests:
        lines.append("        Example(")
        lines.append("            inputs={")
        for name, value in example.inputs.items():
            lines.append(f"                {name!r}: {json.dumps(value)},")
        lines.append("            },")
        lines.append(f"            output={json.dumps(example.output)},")
        lines.append("        ),")
    lines.append("    ],")
    lines.append(")")
    return "\n".join(lines)


class Fig5Row:
    __slots__ = ("task", "generated_loc", "handwritten_loc", "askit_loc", "succeeded")

    def __init__(self, task, generated_loc, handwritten_loc, askit_loc, succeeded):
        self.task = task
        self.generated_loc = generated_loc
        self.handwritten_loc = handwritten_loc
        self.askit_loc = askit_loc
        self.succeeded = succeeded


class Fig5Result:
    def __init__(self, rows: list[Fig5Row]) -> None:
        self.rows = rows

    @property
    def successes(self) -> list[Fig5Row]:
        return [row for row in self.rows if row.succeeded]

    @property
    def success_rate(self) -> float:
        return len(self.successes) / len(self.rows)

    @property
    def mean_generated_loc(self) -> float:
        rows = self.successes
        return sum(row.generated_loc for row in rows) / len(rows)

    @property
    def mean_handwritten_loc(self) -> float:
        rows = self.successes
        return sum(row.handwritten_loc for row in rows) / len(rows)

    @property
    def mean_askit_loc(self) -> float:
        rows = self.successes
        return sum(row.askit_loc for row in rows) / len(rows)

    @property
    def loc_ratio(self) -> float:
        return self.mean_generated_loc / self.mean_handwritten_loc

    @property
    def shorter_fraction(self) -> float:
        rows = self.successes
        shorter = sum(1 for row in rows if row.generated_loc < row.handwritten_loc)
        return shorter / len(rows)


def run(noise: NoisePolicy | None = None) -> Fig5Result:
    client = ChatClient(noise_policy=noise or DEFAULT_NOISE)
    rows: list[Fig5Row] = []
    with config_override(client=client, model=MODEL, cache_dir=None):
        for task in all_tasks():
            definition = define(
                _infer_return_type(task),
                task.description,
                test_examples=task.tests,
                name=task.entry_point,
            )
            askit_loc = count_python_loc(askit_source_text(task))
            handwritten_loc = count_python_loc(task.canonical_solution)
            try:
                generated = definition.compile(language="python", use_cache=False)
            except CodeGenerationError:
                rows.append(Fig5Row(task, 0, handwritten_loc, askit_loc, False))
                continue
            rows.append(
                Fig5Row(
                    task,
                    count_python_loc(generated.source),
                    handwritten_loc,
                    askit_loc,
                    True,
                )
            )
    return Fig5Result(rows)


def _infer_return_type(task: HumanEvalTask):
    """Infer the AskIt return type from the task's example outputs."""
    from repro.types import ANY, infer_type, unify_all

    try:
        return unify_all(infer_type(example.output) for example in task.tests)
    except (TypeError, ValueError):
        return ANY


def render(result: Fig5Result) -> str:
    rows = result.successes
    xs = [float(row.handwritten_loc) for row in rows]
    ys = [float(row.generated_loc) for row in rows]
    scatter = render_scatter(
        xs,
        ys,
        title="Figure 5: generated vs hand-written LOC (HumanEval-style)",
        x_label="hand-written LOC",
        y_label="generated LOC",
    )
    summary = (
        f"\nTasks: {len(result.rows)}; success rate {100 * result.success_rate:.1f} % "
        f"(paper: 84.8 %)\n"
        f"Mean generated LOC {result.mean_generated_loc:.2f} vs hand-written "
        f"{result.mean_handwritten_loc:.2f} -> ratio {result.loc_ratio:.2f}x (paper: 1.27x)\n"
        f"Mean AskIt source LOC {result.mean_askit_loc:.2f} (paper: 23.74)\n"
        f"Generated shorter than hand-written in "
        f"{100 * result.shorter_fraction:.1f} % of tasks (paper: 35.3 %)\n"
    )
    csv_rows = [
        (row.task.task_id, row.handwritten_loc, row.generated_loc, row.askit_loc)
        for row in rows
    ]
    series = csv_text(["task_id", "handwritten_loc", "generated_loc", "askit_loc"], csv_rows)
    return scatter + summary + "\nCSV series:\n" + series


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
