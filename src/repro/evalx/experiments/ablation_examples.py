"""Experiment E7 (ablation) -- RQ2: are test examples vital for codegen?

The paper argues that supplying input/output examples to ``define`` is
"vital for assuring the correctness of the generated code" because first
tries are occasionally buggy (their Fibonacci needed seven retries).
This ablation compiles a batch of bug-prone tasks at increasing planted-
bug rates, with and without validation examples, and measures how much
buggy code reaches the caller.
"""

from __future__ import annotations

from repro.core import config_override, define
from repro.datasets.common_tasks import all_tasks
from repro.errors import CodeGenerationError
from repro.evalx.tables import render_table
from repro.ioexample import outputs_equal
from repro.llm import ChatClient, NoisePolicy

MODEL = "sim-gpt-3.5-turbo-16k"

#: Tasks with planted buggy variants in the model's catalog.
BUG_PRONE_TASKS = (5, 14, 18, 31, 34, 38, 47, 49)


class AblationRow:
    __slots__ = ("bug_rate", "with_examples_correct", "without_examples_correct")

    def __init__(self, bug_rate, with_examples_correct, without_examples_correct):
        self.bug_rate = bug_rate
        self.with_examples_correct = with_examples_correct
        self.without_examples_correct = without_examples_correct


def _correct_fraction(bug_rate: float, use_examples: bool, seed: int) -> float:
    client = ChatClient(noise_policy=NoisePolicy(buggy_code_rate=bug_rate, seed=seed))
    tasks = [task for task in all_tasks() if task.number in BUG_PRONE_TASKS]
    correct = 0
    total = 0
    with config_override(client=client, model=MODEL, cache_dir=None):
        for task in tasks:
            total += 1
            definition = define(
                task.return_type,
                task.template,
                param_types=task.param_types,
                test_examples=task.examples if use_examples else [],
            )
            try:
                generated = definition.compile(use_cache=False)
            except CodeGenerationError:
                continue
            # Judge the shipped function against the task's real examples,
            # whether or not the pipeline saw them.
            if all(
                outputs_equal(generated.call_with(example.inputs), example.output)
                for example in task.examples
            ):
                correct += 1
    return correct / total


def run(bug_rates: tuple[float, ...] = (0.0, 0.3, 0.6, 0.9)) -> list[AblationRow]:
    rows = []
    for index, bug_rate in enumerate(bug_rates):
        rows.append(
            AblationRow(
                bug_rate,
                _correct_fraction(bug_rate, True, seed=300 + index),
                _correct_fraction(bug_rate, False, seed=300 + index),
            )
        )
    return rows


def render(rows: list[AblationRow]) -> str:
    table = render_table(
        ["Planted-bug rate", "Correct with examples", "Correct without examples"],
        [
            [
                f"{row.bug_rate:.0%}",
                f"{100 * row.with_examples_correct:.1f} %",
                f"{100 * row.without_examples_correct:.1f} %",
            ]
            for row in rows
        ],
        title="Ablation (RQ2): example-based validation vs shipped bugs",
    )
    return table + (
        "\nReading: with examples, validation catches planted bugs and the\n"
        "retry loop regenerates; without them, buggy first tries ship\n"
        "silently -- the paper's RQ2 conclusion.\n"
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
