"""Experiment E1 -- Table II: the 50 common coding tasks.

For every task the experiment runs ``define(...).compile()`` in TypeScript
and in Python with the ``sim-gpt-3.5-turbo-16k`` backend (as in the
paper), recording generated LOC and retries.  Python rows for tasks
#11/#21-#24 fail by design (pyaskit passes no parameter types); failures
report 0 LOC, exactly as the paper's table does.

The driver runs on an isolated :class:`~repro.core.session.Session` and
sweeps the 50 tasks through ``session.run_parallel`` -- rows come back in
task order and one task's failure never aborts the sweep.

Warm-cache sweeps: ``run(cache="read-write", cache_dir=...)`` records
every completion in the persistent response cache, and
:func:`run_cache_sweep` performs the cold-then-warm pair against one
cache directory -- the warm sweep replays all LLM traffic with zero
simulated latency, so its ``wall_s`` collapses and its ``client_stats``
show pure hits.

Scheduled sweeps: ``run(rate_limit=..., scheduler="adaptive",
scheduler_policy=...)`` runs the whole experiment under a provider rate
limit with the request scheduler pacing admission, and
:func:`run_scheduled_sweep` performs the naive-then-scheduled pair
against equally throttled providers -- compare the two results'
``wall_s`` and throttle counters to see what admission control buys.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import SchedulerPolicy, Session
from repro.datasets.common_tasks import CommonTask, all_tasks
from repro.errors import CodeGenerationError
from repro.evalx.loc import count_loc
from repro.evalx.tables import render_table
from repro.llm import ChatClient, NoisePolicy, SimulatedRateLimit

#: The paper runs this experiment on GPT-3.5 Turbo 16k.
MODEL = "sim-gpt-3.5-turbo-16k"

#: Moderate first-try bug rate so the Retry column is non-trivially zero,
#: as in the paper ("the retry count ... is not consistently zero").
DEFAULT_NOISE = NoisePolicy(direct_corruption_rate=0.0, buggy_code_rate=0.30, seed=2024)


class TaskRow:
    """One Table II row."""

    __slots__ = ("task", "ts_loc", "ts_retry", "py_loc", "py_retry")

    def __init__(self, task: CommonTask, ts_loc, ts_retry, py_loc, py_retry) -> None:
        self.task = task
        self.ts_loc = ts_loc
        self.ts_retry = ts_retry
        self.py_loc = py_loc
        self.py_retry = py_retry


class Table2Result:
    """The populated table plus the sweep's runtime accounting."""

    def __init__(self, rows: list[TaskRow], wall_s: float = 0.0, client_stats=None) -> None:
        self.rows = rows
        #: Simulated wall-clock of the whole sweep (parallel schedule).
        self.wall_s = wall_s
        #: The session's :class:`~repro.llm.client.ClientStats` -- includes
        #: cache hit/miss/coalesced counters when a response cache was on.
        self.client_stats = client_stats

    def _mean(self, attribute: str) -> float:
        values = [getattr(row, attribute) for row in self.rows]
        values = [value for value in values if value is not None]
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_ts_loc(self) -> float:
        return self._mean("ts_loc")

    @property
    def mean_py_loc(self) -> float:
        """Mean over all rows, counting failures as 0 (as the paper's
        6.52 average does)."""
        return sum(row.py_loc or 0 for row in self.rows) / len(self.rows)

    @property
    def python_failures(self) -> list[int]:
        return [row.task.number for row in self.rows if row.py_loc is None]


def _compile_one(session: Session, task: CommonTask, language: str):
    """Compile one task; returns (loc, retries) or (None, attempts-1)."""
    definition = session.define(
        task.return_type,
        task.template,
        param_types=task.param_types,
        test_examples=task.examples,
    )
    try:
        generated = definition.compile(language=language, use_cache=False)
    except CodeGenerationError:
        return None, None
    return count_loc(generated.source, language), generated.retries


def run(
    noise: NoisePolicy | None = None,
    max_concurrency: int = 8,
    *,
    cache: str = "off",
    cache_dir: str | Path | None = None,
    scheduler: str = "off",
    scheduler_policy: SchedulerPolicy | None = None,
    rate_limit: SimulatedRateLimit | None = None,
) -> Table2Result:
    """Run the full experiment; returns the populated table.

    ``cache``/``cache_dir`` enable the persistent response cache for the
    sweep (see :mod:`repro.core.response_cache`); re-running against the
    same directory replays every completion instead of recomputing it.

    ``rate_limit`` throttles the simulated provider (emitting 429s under
    load) and ``scheduler``/``scheduler_policy`` enable the request
    scheduler that paces the sweep through the limit; the result's
    ``client_stats`` then carry the throttle/requeue counters.
    """
    session = Session(
        model=MODEL,
        cache_dir=cache_dir,
        cache=cache,
        scheduler=scheduler,
        scheduler_policy=scheduler_policy,
        client=ChatClient(noise_policy=noise or DEFAULT_NOISE, rate_limit=rate_limit),
    )

    def measure(task: CommonTask):
        def thunk() -> TaskRow:
            ts_loc, ts_retry = _compile_one(session, task, "typescript")
            py_loc, py_retry = _compile_one(session, task, "python")
            return TaskRow(task, ts_loc, ts_retry, py_loc, py_retry)

        return thunk

    tasks = list(all_tasks())
    batch = session.run_parallel(
        [measure(task) for task in tasks], max_concurrency=max_concurrency
    )
    # Read outcomes, not values: a task that failed outright (captured on
    # its outcome) becomes an all-failure row instead of aborting the sweep.
    rows = [
        outcome.value
        if outcome.ok
        else TaskRow(task, None, None, None, None)
        for task, outcome in zip(tasks, batch.outcomes)
    ]
    return Table2Result(
        rows, wall_s=session.clock.elapsed_s, client_stats=session.stats.snapshot()
    )


def run_cache_sweep(
    cache_dir: str | Path,
    noise: NoisePolicy | None = None,
    max_concurrency: int = 8,
) -> tuple[Table2Result, Table2Result]:
    """Run the sweep cold then warm against one response-cache directory.

    Both runs use fresh sessions; only the on-disk cache is shared, so
    the warm run's speedup is entirely due to response replay.  Returns
    ``(cold, warm)`` -- compare their ``wall_s`` and ``client_stats``.
    """
    cold = run(noise, max_concurrency, cache="read-write", cache_dir=cache_dir)
    warm = run(noise, max_concurrency, cache="read-write", cache_dir=cache_dir)
    return cold, warm


def run_scheduled_sweep(
    requests_per_minute: float = 120.0,
    burst: int = 4,
    min_retry_after_s: float = 20.0,
    noise: NoisePolicy | None = None,
    max_concurrency: int = 8,
) -> tuple[Table2Result, Table2Result]:
    """Run the sweep naively then scheduled under one provider rate limit.

    Both runs face an identically configured
    :class:`~repro.llm.ratelimit.SimulatedRateLimit`; only the second
    routes through the request scheduler (paced to the same limit).
    Returns ``(naive, scheduled)`` -- compare their ``wall_s`` and the
    ``rate_limited``/``throttled`` counters on ``client_stats``.
    """

    def limit() -> SimulatedRateLimit:
        return SimulatedRateLimit(
            requests_per_minute, burst=burst, min_retry_after_s=min_retry_after_s
        )

    naive = run(noise, max_concurrency, rate_limit=limit())
    scheduled = run(
        noise,
        max_concurrency,
        scheduler="adaptive",
        scheduler_policy=SchedulerPolicy(
            requests_per_minute=requests_per_minute, burst=burst
        ),
        rate_limit=limit(),
    )
    return naive, scheduled


def render(result: Table2Result) -> str:
    headers = ["#", "Template Prompt", "Return Type", "TS LOC", "TS Retry", "Py LOC", "Py Retry"]
    body = []
    for row in result.rows:
        body.append(
            [
                row.task.number,
                row.task.template,
                row.task.return_type.typescript(),
                row.ts_loc if row.ts_loc is not None else 0,
                row.ts_retry if row.ts_retry is not None else "-",
                row.py_loc if row.py_loc is not None else 0,
                row.py_retry if row.py_retry is not None else "-",
            ]
        )
    table = render_table(headers, body, title="Table II: 50 common coding tasks")
    summary = (
        f"\nAverage LOC: TypeScript {result.mean_ts_loc:.2f} "
        f"(paper: 7.56), Python {result.mean_py_loc:.2f} (paper: 6.52)\n"
        f"Python failures: {result.python_failures} (paper: [11, 21, 22, 23, 24])\n"
    )
    return table + summary


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
