"""Experiment E6 (ablation) -- the direct-answer prompt design.

Section III-E motivates two design choices: the mandatory
``{reason, answer}`` JSON wrapper and the feedback retry loop.  This
ablation measures what each buys, by running a batch of direct tasks
under injected corruption and comparing success rates and attempt counts
with retries enabled vs disabled.
"""

from __future__ import annotations

import repro.types as t
from repro.core import config_override, define
from repro.errors import MaxRetriesExceededError
from repro.evalx.tables import render_table
from repro.evalx.timing import Mean
from repro.llm import ChatClient, NoisePolicy

MODEL = "sim-gpt-4"

#: A batch of directly answerable tasks with known-good answers.
TASKS: list[tuple[str, object, dict, object]] = [
    ("Calculate the factorial of {{n}}.", t.int, {"n": 6}, 720),
    ("Sort the numbers {{ns}} in ascending order.", t.list(t.int), {"ns": [4, 1, 3]}, [1, 3, 4]),
    ("Reverse the string {{s}}.", t.str, {"s": "abcdef"}, "fedcba"),
    ("Check if {{n}} is a prime number.", t.bool, {"n": 97}, True),
    ("Count the vowels in the string {{s}}.", t.int, {"s": "alphabet soup"}, 5),
    ("Find the largest number in {{ns}}.", t.int, {"ns": [9, 2, 7]}, 9),
    ("What is 7 times 8?", t.int, {}, 56),
    ("Compute the running sum of {{ns}}.", t.list(t.int), {"ns": [2, 2, 2]}, [2, 4, 6]),
]


class AblationRow:
    __slots__ = ("label", "success_rate", "mean_attempts")

    def __init__(self, label: str, success_rate: float, mean_attempts: float) -> None:
        self.label = label
        self.success_rate = success_rate
        self.mean_attempts = mean_attempts


def _run_batch(corruption: float, max_retries: int, repeats: int, seed: int) -> AblationRow:
    client = ChatClient(noise_policy=NoisePolicy(direct_corruption_rate=corruption, seed=seed))
    successes = 0
    total = 0
    attempts = Mean()
    with config_override(client=client, model=MODEL, max_retries=max_retries, cache_dir=None):
        for repeat in range(repeats):
            for template, answer_type, args, expected in TASKS:
                total += 1
                fn = define(answer_type, template)
                try:
                    value = fn(**args)
                except MaxRetriesExceededError:
                    attempts.add(max_retries + 1)
                    continue
                attempts.add(fn.last_result.attempts)
                if value == expected:
                    successes += 1
    label = f"corruption={corruption:.0%}, retries={max_retries}"
    return AblationRow(label, successes / total, attempts.value)


def run(repeats: int = 6) -> list[AblationRow]:
    rows = []
    for corruption in (0.3, 0.6):
        for max_retries in (0, 2, 9):
            rows.append(_run_batch(corruption, max_retries, repeats, seed=101))
    return rows


def render(rows: list[AblationRow]) -> str:
    table = render_table(
        ["Configuration", "Success rate", "Mean attempts"],
        [[row.label, f"{100 * row.success_rate:.1f} %", row.mean_attempts] for row in rows],
        title="Ablation: feedback retries under injected response corruption",
    )
    return table + (
        "\nReading: without retries, corrupted responses are lost tasks; the\n"
        "feedback loop recovers essentially all of them within the budget,\n"
        "which is why the paper can set temperature 1.0 and retry to 9.\n"
    )


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
