"""Experiment E3 -- Figure 6: prompt-length reduction on OpenAI-Evals.

For each of the 50 benchmarks the experiment (1) measures the character
reduction from the original prompt to the AskIt prompt and (2) runs the
AskIt prompt through ``ask`` to confirm a type-conforming answer comes
back -- the paper's check, since most benchmarks are unsolvable anyway.
"""

from __future__ import annotations

from repro.core import ask, config_override
from repro.datasets.openai_evals import EvalBenchmark, all_benchmarks
from repro.errors import MaxRetriesExceededError
from repro.evalx.figures import csv_text, render_histogram
from repro.llm import ChatClient, NoisePolicy

MODEL = "sim-gpt-4"

DEFAULT_NOISE = NoisePolicy(direct_corruption_rate=0.10, seed=17)


class Fig6Result:
    def __init__(self, rows: list[tuple[EvalBenchmark, bool]]) -> None:
        self.rows = rows

    @property
    def reductions_chars(self) -> list[int]:
        return [benchmark.reduction_chars for benchmark, _ in self.rows]

    @property
    def mean_reduction_percent(self) -> float:
        percents = [benchmark.reduction_percent for benchmark, _ in self.rows]
        return sum(percents) / len(percents)

    @property
    def format_conformance_rate(self) -> float:
        return sum(1 for _, ok in self.rows if ok) / len(self.rows)


def run(noise: NoisePolicy | None = None) -> Fig6Result:
    client = ChatClient(noise_policy=noise or DEFAULT_NOISE)
    rows: list[tuple[EvalBenchmark, bool]] = []
    with config_override(client=client, model=MODEL, cache_dir=None):
        for benchmark in all_benchmarks():
            try:
                # The AskIt prompt has no {{params}} (the first test case is
                # baked in), so it runs as a parameterless ask.
                ask(benchmark.answer_type, benchmark.askit)
                conforming = True
            except MaxRetriesExceededError:
                conforming = False
            rows.append((benchmark, conforming))
    return Fig6Result(rows)


def render(result: Fig6Result) -> str:
    histogram = render_histogram(
        [float(value) for value in result.reductions_chars],
        bucket_width=25,
        title="Figure 6: reduction in prompt length (characters)",
        x_label="characters removed",
    )
    summary = (
        f"\nMean reduction: {result.mean_reduction_percent:.2f} % (paper: 16.14 %)\n"
        f"Typed responses parsed for {100 * result.format_conformance_rate:.1f} % "
        f"of benchmarks (the paper's format-congruence check)\n"
    )
    rows = [
        (benchmark.name, len(benchmark.original), len(benchmark.askit), benchmark.reduction_chars)
        for benchmark, _ in result.rows
    ]
    series = csv_text(["benchmark", "original_chars", "askit_chars", "reduction_chars"], rows)
    return histogram + summary + "\nCSV series:\n" + series


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
