"""Experiment E5 -- Table III: GSM8K direct answering vs generated code.

For every problem (numbers already lifted into template variables, the
paper's transformation) the experiment:

1. answers directly with ``sim-gpt-4``, measuring simulated LLM latency
   and checking correctness against the reference answer;
2. for directly solved problems, compiles the task into a function
   (validated against the original values as the test example), measuring
   compilation time (LLM latency dominates) and *real* execution time of
   the generated function;
3. reports the Table III averages: latency, execution time, compilation
   time, and the latency/execution speedup ratio -- for TypeScript and
   Python.

Problem count defaults to the full 1,319 but honours the
``REPRO_GSM8K_COUNT`` environment variable so benchmarks can subsample.

Warm-cache sweeps: ``run(cache="read-write", cache_dir=...)`` persists
every completion (direct answers *and* code generation) in the response
cache; :func:`run_cache_sweep` performs the cold-then-warm pair and the
warm run replays all LLM traffic at zero simulated latency.
"""

from __future__ import annotations

import os
from pathlib import Path

import repro.types as t
from repro.core import AskItFunction, SchedulerPolicy, Session
from repro.datasets.gsm8k import GsmProblem, answers_match, generate_dataset
from repro.errors import CodeGenerationError, MaxRetriesExceededError
from repro.evalx.tables import render_table
from repro.evalx.timing import Mean, measure_execution_s
from repro.llm import ChatClient, NoisePolicy, SimulatedRateLimit

MODEL = "sim-gpt-4"

DEFAULT_NOISE = NoisePolicy(direct_corruption_rate=0.08, buggy_code_rate=0.10, seed=31)


def problem_count() -> int:
    return int(os.environ.get("REPRO_GSM8K_COUNT", "1319"))


class LanguageStats:
    """Per-host-language accumulation of the Table III metrics."""

    def __init__(self, language: str) -> None:
        self.language = language
        self.total = 0
        self.solved_directly = 0
        self.generated = 0
        self.latency = Mean()
        self.execution = Mean()
        self.compilation = Mean()
        #: Simulated wall-clock of this language's direct-answer sweep.
        self.wall_s = 0.0
        #: The session's :class:`~repro.llm.client.ClientStats` (includes
        #: cache hit/miss/coalesced counters when a response cache is on).
        self.client_stats = None

    @property
    def speedup(self) -> float:
        if self.execution.value == 0:
            return 0.0
        return self.latency.value / self.execution.value

    def row(self) -> list:
        return [
            self.language,
            self.latency.value,
            self.execution.value * 1e6,
            self.compilation.value,
            self.speedup,
            f"{self.solved_directly}/{self.total}",
            f"{self.generated}/{self.solved_directly}",
        ]


def _answer_directly(
    session: Session, problem: GsmProblem
) -> tuple[AskItFunction, float | None]:
    """Phase-1 work item: define the task and answer it through the LLM."""
    definition = session.define(
        t.float,
        problem.template,
        param_types={name: t.int for name in problem.args},
        test_examples=[(problem.args, problem.answer)],
    )
    try:
        value = definition(**problem.args)
    except MaxRetriesExceededError:
        return definition, None
    return definition, value


def _measure_generated(
    definition: AskItFunction,
    problem: GsmProblem,
    language: str,
    stats: LanguageStats,
) -> None:
    """Phase-2 work item: compile a directly solved task and time it."""
    try:
        generated = definition.compile(language=language, use_cache=False)
    except CodeGenerationError:
        return
    stats.generated += 1
    stats.compilation.add(generated.compile_time_s)
    stats.execution.add(
        measure_execution_s(generated, problem.args, repeats=3, inner_loops=5)
    )


def run(
    count: int | None = None,
    noise: NoisePolicy | None = None,
    languages: tuple[str, ...] = ("typescript", "python"),
    max_concurrency: int = 8,
    *,
    cache: str = "off",
    cache_dir: str | Path | None = None,
    scheduler: str = "off",
    scheduler_policy: SchedulerPolicy | None = None,
    rate_limit: SimulatedRateLimit | None = None,
) -> dict[str, LanguageStats]:
    """Run the experiment; returns per-language stats.

    The direct-answer sweep fans out over each language's session worker
    pool (``session.run_parallel``); compilation and execution timing stay
    sequential so the real-time measurements are uncontended.
    ``cache``/``cache_dir`` enable the persistent response cache, making
    repeated runs against one directory replay instead of recompute.
    ``rate_limit`` throttles the simulated provider and
    ``scheduler``/``scheduler_policy`` pace the sweep through it (see
    :mod:`repro.core.scheduler`); each language's ``client_stats`` then
    carry the throttle/requeue counters its sweep incurred.
    """
    problems = generate_dataset(count or problem_count())
    results: dict[str, LanguageStats] = {}
    for language in languages:
        # Each language runs on its own session, hence its own virtual
        # clock starting at zero -- so each sweep faces a *fresh* limiter
        # with the same parameters (sharing TAT state across clocks would
        # refuse the second sweep's entire opening burst).
        limit = (
            SimulatedRateLimit(
                rate_limit.requests_per_minute,
                burst=rate_limit.burst,
                min_retry_after_s=rate_limit.min_retry_after_s,
            )
            if rate_limit is not None
            else None
        )
        session = Session(
            model=MODEL,
            cache_dir=cache_dir,
            cache=cache,
            scheduler=scheduler,
            scheduler_policy=scheduler_policy,
            client=ChatClient(
                noise_policy=noise or DEFAULT_NOISE, rate_limit=limit
            ),
        )
        stats = LanguageStats(language)
        answered = session.run_parallel(
            [
                lambda problem=problem: _answer_directly(session, problem)
                for problem in problems
            ],
            max_concurrency=max_concurrency,
        )
        for problem, outcome in zip(problems, answered.outcomes):
            stats.total += 1
            if not outcome.ok:
                continue
            definition, value = outcome.value
            if value is None:
                continue
            stats.latency.add(definition.last_result.latency_s)
            if not answers_match(problem.answer, value):
                continue
            stats.solved_directly += 1
            _measure_generated(definition, problem, language, stats)
        stats.wall_s = session.clock.elapsed_s
        stats.client_stats = session.stats.snapshot()
        results[language] = stats
    return results


def run_cache_sweep(
    cache_dir: str | Path,
    count: int | None = None,
    noise: NoisePolicy | None = None,
    languages: tuple[str, ...] = ("typescript", "python"),
    max_concurrency: int = 8,
) -> tuple[dict[str, LanguageStats], dict[str, LanguageStats]]:
    """Run the experiment cold then warm against one response-cache dir.

    Fresh sessions both times; only the on-disk cache is shared.  Returns
    ``(cold, warm)`` -- the warm run's per-language ``wall_s`` collapses
    because every completion replays from the cache.  Note that direct
    answers are language-independent, so within the cold run the second
    language already hits the first language's direct-answer entries
    (its codegen traffic, which embeds the target language, still
    misses).
    """
    cold = run(count, noise, languages, max_concurrency, cache="read-write", cache_dir=cache_dir)
    warm = run(count, noise, languages, max_concurrency, cache="read-write", cache_dir=cache_dir)
    return cold, warm


def run_scheduled_sweep(
    requests_per_minute: float = 120.0,
    burst: int = 4,
    min_retry_after_s: float = 20.0,
    count: int | None = None,
    noise: NoisePolicy | None = None,
    languages: tuple[str, ...] = ("typescript", "python"),
    max_concurrency: int = 8,
) -> tuple[dict[str, LanguageStats], dict[str, LanguageStats]]:
    """Run the experiment naively then scheduled under one rate limit.

    Both runs face identically configured provider limits; the second
    paces through the request scheduler.  Returns ``(naive, scheduled)``
    -- compare per-language ``wall_s`` and the throttle counters on
    ``client_stats``.
    """
    limit = SimulatedRateLimit(
        requests_per_minute, burst=burst, min_retry_after_s=min_retry_after_s
    )
    naive = run(count, noise, languages, max_concurrency, rate_limit=limit)
    scheduled = run(
        count,
        noise,
        languages,
        max_concurrency,
        scheduler="adaptive",
        scheduler_policy=SchedulerPolicy(
            requests_per_minute=requests_per_minute, burst=burst
        ),
        rate_limit=limit,
    )
    return naive, scheduled


PAPER_ROWS = {
    "typescript": {"latency": 13.28, "execution_us": 49.11, "compile": 14.19, "speedup": 275092.55},
    "python": {"latency": 22.97, "execution_us": 5.09, "compile": 20.38, "speedup": 6969904.73},
}


def render(results: dict[str, LanguageStats]) -> str:
    headers = [
        "Language",
        "Latency (s)",
        "Exec (us)",
        "Compile (s)",
        "Speedup",
        "Direct solved",
        "Generated",
    ]
    rows = [stats.row() for stats in results.values()]
    table = render_table(headers, rows, title="Table III: GSM8K direct vs generated")
    paper = render_table(
        ["Language", "Latency (s)", "Exec (us)", "Compile (s)", "Speedup"],
        [
            ["typescript", 13.28, 49.11, 14.19, 275092.55],
            ["python", 22.97, 5.09, 20.38, 6969904.73],
        ],
        title="\nPaper's Table III (Apple M1, real GPT-4):",
    )
    return table + "\n" + paper + "\n"


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
