"""Text-mode figure rendering and CSV export.

The paper's figures are regenerated as ASCII plots (histogram, scatter,
bar chart) plus CSV series files, since this environment has no plotting
stack.  The CSV columns match the figures' axes so the plots can be
re-rendered graphically elsewhere.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Sequence


def render_histogram(
    values: Sequence[float],
    bucket_width: float,
    title: str = "",
    max_bar: int = 50,
    x_label: str = "value",
) -> str:
    """ASCII histogram with fixed-width buckets starting at 0."""
    if bucket_width <= 0:
        raise ValueError("bucket_width must be positive")
    if not values:
        return f"{title}\n(no data)"
    top = max(values)
    bucket_count = int(top // bucket_width) + 1
    counts = [0] * bucket_count
    for value in values:
        counts[int(value // bucket_width)] += 1
    peak = max(counts)
    lines = [title] if title else []
    for index, count in enumerate(counts):
        lo = index * bucket_width
        hi = lo + bucket_width
        bar = "#" * (round(max_bar * count / peak) if peak else 0)
        lines.append(f"{lo:>8.0f}-{hi:<8.0f} |{bar} {count}")
    lines.append(f"({len(values)} samples, {x_label})")
    return "\n".join(lines)


def render_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """ASCII scatter plot; ``*`` marks points, ``o`` marks collisions."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return f"{title}\n(no data)"
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][column] = "o" if grid[row][column] == "*" else "*"
    lines = [title] if title else []
    lines.append(f"{y_label} (top={y_hi:g}, bottom={y_lo:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}   ({len(xs)} points)")
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    series: dict[str, Sequence[int]],
    title: str = "",
    max_bar: int = 40,
) -> str:
    """Grouped horizontal bar chart (Figure 7's two series)."""
    peak = max((max(values) for values in series.values() if values), default=1) or 1
    lines = [title] if title else []
    label_width = max((len(label) for label in labels), default=4)
    for index, label in enumerate(labels):
        for series_name, values in series.items():
            count = values[index]
            bar = "#" * round(max_bar * count / peak)
            lines.append(f"{label:>{label_width}} [{series_name:>9}] |{bar} {count}")
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Sequence[Sequence]) -> Path:
    """Write a CSV series file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def csv_text(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render CSV to a string (for tests and in-report embedding)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()
