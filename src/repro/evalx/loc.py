"""Lines-of-code counting.

The paper's LOC metric "counts only substantive lines, omitting empty
lines or comment-only lines" (Section IV-A1).  Both host languages are
supported; block comments are tracked across lines.
"""

from __future__ import annotations


def count_python_loc(source: str) -> int:
    """Substantive Python lines: non-blank, non-comment-only."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def count_typescript_loc(source: str) -> int:
    """Substantive TypeScript lines (handles ``//`` and ``/* */``)."""
    count = 0
    in_block_comment = False
    for line in source.splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
                remainder = stripped.split("*/", 1)[1].strip()
                if remainder and not remainder.startswith("//"):
                    count += 1
            continue
        if not stripped:
            continue
        if stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            else:
                remainder = stripped.split("*/", 1)[1].strip()
                if remainder and not remainder.startswith("//"):
                    count += 1
            continue
        count += 1
    return count


def count_loc(source: str, language: str) -> int:
    """Dispatch on language name (``python`` / ``typescript``)."""
    if language == "python":
        return count_python_loc(source)
    if language == "typescript":
        return count_typescript_loc(source)
    raise ValueError(f"no LOC counter for language {language!r}")
