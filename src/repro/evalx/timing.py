"""Timing helpers for the experiments.

Generated-code execution times are *real* (``perf_counter`` around actual
calls); LLM latencies are *simulated* (accumulated from the virtual
clock).  Keeping the two clearly separated is what lets Table III report
honest speedup shapes without a network.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping


def measure_execution_s(
    fn: Callable[..., Any],
    args: Mapping[str, Any],
    repeats: int = 5,
    inner_loops: int = 1,
) -> float:
    """Median wall-clock seconds for one call of ``fn(**args)``.

    Runs ``repeats`` samples of ``inner_loops`` back-to-back calls and
    takes the median sample, which resists scheduler noise better than a
    mean of few samples.
    """
    if repeats < 1 or inner_loops < 1:
        raise ValueError("repeats and inner_loops must be positive")
    samples: list[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(inner_loops):
            fn(**args)
        elapsed = time.perf_counter() - started
        samples.append(elapsed / inner_loops)
    samples.sort()
    return samples[len(samples) // 2]


class Mean:
    """Streaming mean (avoids keeping per-item lists in big sweeps)."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value

    @property
    def value(self) -> float:
        if not self.count:
            return 0.0
        return self.total / self.count

    def __repr__(self) -> str:
        return f"Mean({self.value:.6g} over {self.count})"
