"""Generate example values conforming to a type.

Used by the simulated LLM when it must answer a task it does not know:
like a real model pressed for a typed answer, it produces a
*format-conforming* guess.  Also handy in tests.
"""

from __future__ import annotations

from typing import Any

from repro.types.atoms import AnyType, BoolType, FloatType, IntType, NoneType, StrType
from repro.types.base import Type
from repro.types.composites import ListType, RecordType, TupleType, UnionType
from repro.types.literals import LiteralType


def example_value(type_: Type) -> Any:
    """A deterministic value that validates against ``type_``."""
    if isinstance(type_, IntType):
        return 0
    if isinstance(type_, FloatType):
        return 0.0
    if isinstance(type_, BoolType):
        return False
    if isinstance(type_, StrType):
        return ""
    if isinstance(type_, NoneType):
        return None
    if isinstance(type_, AnyType):
        return ""
    if isinstance(type_, LiteralType):
        return type_.value
    if isinstance(type_, ListType):
        return []
    if isinstance(type_, TupleType):
        return [example_value(member) for member in type_.members]
    if isinstance(type_, RecordType):
        return {name: example_value(field) for name, field in type_.fields.items()}
    if isinstance(type_, UnionType):
        return example_value(type_.members[0])
    raise TypeError(f"no example value for {type_!r}")
