"""Core abstractions of the AskIt type system.

The type system mirrors Table I of the paper: a small algebra of type
objects that (a) render to TypeScript type expressions used to constrain
the LLM's JSON output, and (b) validate/coerce parsed JSON values at
runtime.  Types are immutable value objects: equality and hashing are
structural.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import TypeMismatchError

# TypeScript rendering precedence levels, loosest binding first.  Union is
# the loosest; postfix ``[]`` binds tightest, so a union that appears as an
# array element type must be parenthesized: ``('a' | 'b')[]``.
PREC_UNION = 0
PREC_ARRAY = 1
PREC_ATOM = 2


class TypeCheckIssue:
    """One path-qualified problem found while checking a value.

    ``path`` is a JSONPath-ish locator such as ``$.books[2].year`` so the
    feedback prompt can point the LLM at exactly the offending field.
    """

    __slots__ = ("path", "message")

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"

    def __repr__(self) -> str:
        return f"TypeCheckIssue({self.path!r}, {self.message!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TypeCheckIssue):
            return NotImplemented
        return self.path == other.path and self.message == other.message

    def __hash__(self) -> int:
        return hash((self.path, self.message))


class Type:
    """Base class of all AskIt types.

    Subclasses implement :meth:`typescript_with_prec`, :meth:`check` and
    :meth:`coerce`; everything else is derived behaviour shared by all
    types.
    """

    #: Short tag used by Figure 7's type-usage census (e.g. ``"number"``).
    tag: str = "?"

    # -- rendering ---------------------------------------------------

    def typescript(self) -> str:
        """Render this type as a TypeScript type expression.

        This is the string embedded in prompts (Listing 2 of the paper)
        between ```` ```ts ```` fences.
        """
        return self.typescript_with_prec(PREC_UNION)

    def typescript_with_prec(self, prec: int) -> str:
        """Render with surrounding precedence ``prec`` (parenthesize if needed)."""
        raise NotImplementedError

    # -- validation --------------------------------------------------

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        """Return every problem that makes ``value`` not conform to this type.

        An empty list means the value conforms.
        """
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        """True when ``value`` conforms to this type."""
        return not self.check(value)

    def coerce(self, value: Any) -> Any:
        """Return the canonical Python value for ``value`` under this type.

        Performs benign conversions (an integral float becomes an ``int``
        for integer types, extra record keys are dropped, union members are
        tried in order).  Raises :class:`TypeMismatchError` when the value
        does not conform.
        """
        issues = self.check(value)
        if issues:
            raise TypeMismatchError(
                f"value does not match type {self.typescript()}",
                [str(issue) for issue in issues],
            )
        return self._coerce_unchecked(value)

    def _coerce_unchecked(self, value: Any) -> Any:
        """Coerce ``value`` assuming :meth:`check` already passed."""
        return value

    # -- structure ---------------------------------------------------

    def children(self) -> tuple["Type", ...]:
        """Immediate component types (empty for atoms)."""
        return ()

    def walk(self) -> Iterator["Type"]:
        """Yield this type and every nested component, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def is_void(self) -> bool:
        """True for the ``void`` type (used by side-effect-only tasks)."""
        return False

    # -- value-object protocol ---------------------------------------

    def _key(self) -> tuple:
        """Structural identity used by ``__eq__``/``__hash__``."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Type):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.typescript()}>"


def render_typescript_value(value: Any) -> str:
    """Render a Python constant as TypeScript source (for literal types).

    Strings use single quotes as in the paper's examples; booleans map to
    ``true``/``false``.
    """
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'").replace("\n", "\\n")
        return f"'{escaped}'"
    if isinstance(value, (int, float)):
        return repr(value)
    raise TypeError(f"cannot render {type(value).__name__} as a TypeScript literal")


def describe_json_value(value: Any) -> str:
    """Short human description of a JSON value's kind, for error messages."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "a boolean"
    if isinstance(value, int):
        return "an integer"
    if isinstance(value, float):
        return "a number"
    if isinstance(value, str):
        return "a string"
    if isinstance(value, list):
        return "an array"
    if isinstance(value, dict):
        return "an object"
    return f"a {type(value).__name__}"
