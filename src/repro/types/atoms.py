"""Atomic (non-composite) AskIt types: numbers, strings, booleans, void, any.

Note the JSON-centric laxness rules, chosen to match how LLM answers come
back from a JSON block:

* ``IntType`` accepts integral floats (``7.0``) and coerces them to ``int``.
* ``FloatType`` accepts ints and coerces them to ``float``.
* ``bool`` is never accepted where a number is expected, even though
  ``bool`` is a subclass of ``int`` in Python.
"""

from __future__ import annotations

from typing import Any

from repro.types.base import Type, TypeCheckIssue, describe_json_value


class IntType(Type):
    """Integer type; renders as TypeScript ``number``."""

    tag = "number"

    def typescript_with_prec(self, prec: int) -> str:
        return "number"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if isinstance(value, bool):
            return [TypeCheckIssue(path, "expected an integer, got a boolean")]
        if isinstance(value, int):
            return []
        if isinstance(value, float) and value.is_integer():
            return []
        return [TypeCheckIssue(path, f"expected an integer, got {describe_json_value(value)}")]

    def _coerce_unchecked(self, value: Any) -> int:
        return int(value)

    def _key(self) -> tuple:
        return ()


class FloatType(Type):
    """Floating-point type; renders as TypeScript ``number``."""

    tag = "number"

    def typescript_with_prec(self, prec: int) -> str:
        return "number"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if isinstance(value, bool):
            return [TypeCheckIssue(path, "expected a number, got a boolean")]
        if isinstance(value, (int, float)):
            return []
        return [TypeCheckIssue(path, f"expected a number, got {describe_json_value(value)}")]

    def _coerce_unchecked(self, value: Any) -> float:
        return float(value)

    def _key(self) -> tuple:
        return ()


class BoolType(Type):
    """Boolean type; renders as TypeScript ``boolean``."""

    tag = "boolean"

    def typescript_with_prec(self, prec: int) -> str:
        return "boolean"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if isinstance(value, bool):
            return []
        return [TypeCheckIssue(path, f"expected a boolean, got {describe_json_value(value)}")]

    def _key(self) -> tuple:
        return ()


class StrType(Type):
    """String type; renders as TypeScript ``string``."""

    tag = "string"

    def typescript_with_prec(self, prec: int) -> str:
        return "string"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if isinstance(value, str):
            return []
        return [TypeCheckIssue(path, f"expected a string, got {describe_json_value(value)}")]

    def _key(self) -> tuple:
        return ()


class NoneType(Type):
    """The ``void``/``null`` type, used by side-effect-only codable tasks.

    A direct answer of ``null`` conforms; so does the absence of any
    meaningful value.
    """

    tag = "void"

    def typescript_with_prec(self, prec: int) -> str:
        return "void"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if value is None:
            return []
        return [TypeCheckIssue(path, f"expected null, got {describe_json_value(value)}")]

    def _coerce_unchecked(self, value: Any) -> None:
        return None

    def is_void(self) -> bool:
        return True

    def _key(self) -> tuple:
        return ()


class AnyType(Type):
    """The TypeScript ``any`` type: every JSON value conforms."""

    tag = "any"

    def typescript_with_prec(self, prec: int) -> str:
        return "any"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        return []

    def _key(self) -> tuple:
        return ()
