"""AskIt's type system (Table I of the paper).

Use the module qualified for the paper's constructor spelling::

    import repro.types as t

    t.list(t.dict({"title": t.str, "year": t.int}))
    t.union(t.literal("positive"), t.literal("negative"))

or import the class-level API directly::

    from repro.types import parse_type, infer_type, Type
"""

from repro.types.atoms import AnyType, BoolType, FloatType, IntType, NoneType, StrType
from repro.types.base import Type, TypeCheckIssue, render_typescript_value
from repro.types.composites import ListType, RecordType, TupleType, UnionType
from repro.types.factory import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    NONE,
    STR,
    Bool,
    Dict,
    Float,
    Int,
    List,
    Literal,
    Str,
    Tuple,
    Union,
    Void,
    any,
    bool,
    dict,
    float,
    int,
    lift,
    list,
    literal,
    none,
    str,
    tuple_of,
    union,
    void,
)
from repro.types.infer import infer_type, unify, unify_all
from repro.types.literals import LiteralType
from repro.types.parse import parse_type
from repro.types.schema import json_schema, response_schema

__all__ = [
    "Type",
    "TypeCheckIssue",
    "IntType",
    "FloatType",
    "BoolType",
    "StrType",
    "NoneType",
    "AnyType",
    "LiteralType",
    "ListType",
    "RecordType",
    "UnionType",
    "TupleType",
    "parse_type",
    "infer_type",
    "unify",
    "unify_all",
    "json_schema",
    "response_schema",
    "lift",
    "literal",
    "union",
    "tuple_of",
    "render_typescript_value",
    "INT",
    "FLOAT",
    "BOOL",
    "STR",
    "NONE",
    "ANY",
    "Int",
    "Float",
    "Bool",
    "Str",
    "Void",
    "List",
    "Dict",
    "Literal",
    "Union",
    "Tuple",
    "int",
    "float",
    "bool",
    "str",
    "none",
    "void",
    "any",
    "list",
    "dict",
]
