"""Type inference from example values.

Programming-by-example (``define(..., examples)``) and the HumanEval
conversion both need a :class:`Type` for outputs that the user supplied
only as Python constants.  ``infer_type`` produces the most specific type
of a single value; ``unify`` widens two types to a common supertype
(``int`` + ``float`` -> ``float``, otherwise a union).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.types.atoms import AnyType, FloatType, IntType
from repro.types.base import Type
from repro.types.composites import ListType, RecordType, TupleType
from repro.types.factory import ANY, BOOL, FLOAT, INT, NONE, STR, union


def infer_type(value: Any) -> Type:
    """Infer the most specific AskIt type of a Python value.

    ``bool`` is checked before ``int`` because it is an ``int`` subclass.
    Lists infer the unified element type (an empty list infers
    ``any[]``).  Tuples infer tuple types; dicts infer record types.
    """
    if value is None:
        return NONE
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return STR
    if isinstance(value, tuple):
        if not value:
            return ListType(ANY)
        return TupleType([infer_type(item) for item in value])
    if isinstance(value, list):
        if not value:
            return ListType(ANY)
        element = infer_type(value[0])
        for item in value[1:]:
            element = unify(element, infer_type(item))
        return ListType(element)
    if isinstance(value, dict):
        if not value:
            return ANY
        return RecordType({str(name): infer_type(item) for name, item in value.items()})
    raise TypeError(f"cannot infer an AskIt type for {type(value).__name__} values")


def unify(left: Type, right: Type) -> Type:
    """Smallest supported supertype of ``left`` and ``right``.

    Numeric types widen (``int | float -> float``); identical types are
    returned as-is; lists unify element-wise; records unify field-wise when
    the field sets coincide; everything else falls back to a union.
    """
    if left == right:
        return left
    if isinstance(left, AnyType) or isinstance(right, AnyType):
        return ANY
    if _is_numeric(left) and _is_numeric(right):
        return FLOAT
    if isinstance(left, ListType) and isinstance(right, ListType):
        return ListType(unify(left.element, right.element))
    if isinstance(left, TupleType) and isinstance(right, TupleType):
        if len(left.members) == len(right.members):
            return TupleType(
                [unify(a, b) for a, b in zip(left.members, right.members)]
            )
        return union(left, right)
    if isinstance(left, RecordType) and isinstance(right, RecordType):
        if set(left.fields) == set(right.fields):
            return RecordType(
                {name: unify(left.fields[name], right.fields[name]) for name in left.fields}
            )
        return union(left, right)
    return union(left, right)


def unify_all(types: Iterable[Type]) -> Type:
    """Unify a non-empty iterable of types left to right."""
    iterator = iter(types)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("unify_all needs at least one type") from None
    for item in iterator:
        result = unify(result, item)
    return result


def _is_numeric(candidate: Type) -> bool:
    return isinstance(candidate, (IntType, FloatType))
