"""Composite AskIt types: arrays, records, unions, and tuples.

Rendering follows TypeScript syntax, including the precedence rule that a
union used as an array element type needs parentheses: ``('a' | 'b')[]``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.types.base import (
    PREC_ARRAY,
    PREC_UNION,
    Type,
    TypeCheckIssue,
    describe_json_value,
)
from repro.types.literals import LiteralType


class ListType(Type):
    """Homogeneous array type; renders as ``T[]``."""

    tag = "Array"

    def __init__(self, element: Type) -> None:
        if not isinstance(element, Type):
            raise TypeError(f"list() takes a Type, got {type(element).__name__}")
        self.element = element

    def typescript_with_prec(self, prec: int) -> str:
        inner = self.element.typescript_with_prec(PREC_ARRAY)
        return f"{inner}[]"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if not isinstance(value, list):
            return [TypeCheckIssue(path, f"expected an array, got {describe_json_value(value)}")]
        issues: list[TypeCheckIssue] = []
        for index, item in enumerate(value):
            issues.extend(self.element.check(item, f"{path}[{index}]"))
        return issues

    def _coerce_unchecked(self, value: Any) -> list:
        return [self.element._coerce_unchecked(item) for item in value]

    def children(self) -> tuple[Type, ...]:
        return (self.element,)

    def _key(self) -> tuple:
        return (self.element,)


class RecordType(Type):
    """Object type with a fixed set of named fields.

    This is what the paper's Python API spells ``dict({'x': int, 'y': int})``
    and TypeScript spells ``{ x: number; y: number }``.  Extra keys in a
    value are tolerated (LLMs like adding commentary fields) and dropped by
    coercion; missing keys are errors.
    """

    tag = "object"

    def __init__(self, fields: Mapping[str, Type]) -> None:
        if not fields:
            raise TypeError("a record type needs at least one field")
        clean: dict[str, Type] = {}
        for name, field_type in fields.items():
            if not isinstance(name, str) or not name:
                raise TypeError(f"record field names must be non-empty strings, got {name!r}")
            if not isinstance(field_type, Type):
                raise TypeError(
                    f"record field {name!r} must map to a Type, got "
                    f"{type(field_type).__name__}"
                )
            clean[name] = field_type
        self.fields = clean

    def typescript_with_prec(self, prec: int) -> str:
        parts = [
            f"{name}: {field_type.typescript_with_prec(PREC_UNION)}"
            for name, field_type in self.fields.items()
        ]
        return "{ " + "; ".join(parts) + " }"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if not isinstance(value, dict):
            return [TypeCheckIssue(path, f"expected an object, got {describe_json_value(value)}")]
        issues: list[TypeCheckIssue] = []
        for name, field_type in self.fields.items():
            if name not in value:
                issues.append(TypeCheckIssue(path, f"missing required field '{name}'"))
                continue
            issues.extend(field_type.check(value[name], f"{path}.{name}"))
        return issues

    def _coerce_unchecked(self, value: Any) -> dict:
        return {
            name: field_type._coerce_unchecked(value[name])
            for name, field_type in self.fields.items()
        }

    def children(self) -> tuple[Type, ...]:
        return tuple(self.fields.values())

    def _key(self) -> tuple:
        return tuple(sorted((name, field) for name, field in self.fields.items()))


class UnionType(Type):
    """Sum type; renders as ``A | B | ...``.

    Construction flattens nested unions and deduplicates members while
    preserving first-occurrence order, so
    ``union(union(a, b), b, c)`` == ``union(a, b, c)``.
    """

    tag = "union"

    def __init__(self, members: Sequence[Type]) -> None:
        flat: list[Type] = []
        for member in members:
            if not isinstance(member, Type):
                raise TypeError(f"union() takes Types, got {type(member).__name__}")
            candidates = member.members if isinstance(member, UnionType) else [member]
            for candidate in candidates:
                if candidate not in flat:
                    flat.append(candidate)
        if len(flat) < 2:
            raise TypeError("a union needs at least two distinct member types")
        self.members = tuple(flat)

    def typescript_with_prec(self, prec: int) -> str:
        # Distinct Types can share a TypeScript spelling (int and float are
        # both ``number``); dedupe the rendered members so the output is
        # idiomatic TS and re-parses to an equivalent type.
        seen: list[str] = []
        for member in self.members:
            spelling = member.typescript_with_prec(PREC_UNION + 1)
            if spelling not in seen:
                seen.append(spelling)
        if len(seen) == 1:
            return seen[0]
        rendered = " | ".join(seen)
        if prec > PREC_UNION:
            return f"({rendered})"
        return rendered

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        for member in self.members:
            if not member.check(value, path):
                return []
        return [
            TypeCheckIssue(
                path,
                f"expected {self.typescript()}, got {describe_json_value(value)} ({value!r})",
            )
        ]

    def _coerce_unchecked(self, value: Any) -> Any:
        for member in self.members:
            if not member.check(value):
                return member._coerce_unchecked(value)
        # check() passed before coercion, so this is unreachable in normal
        # use; keep a defensive error for direct _coerce_unchecked callers.
        raise AssertionError("union coercion reached with non-conforming value")

    def children(self) -> tuple[Type, ...]:
        return self.members

    def is_enum_of_literals(self) -> bool:
        """True when every member is a literal (an enumeration type)."""
        return all(isinstance(member, LiteralType) for member in self.members)

    def _key(self) -> tuple:
        return self.members


class TupleType(Type):
    """Fixed-length heterogeneous array; renders as ``[A, B, ...]``.

    Not in the paper's Table I, but required by several OpenAI Evals
    benchmarks whose answers are coordinate pairs, and a natural extension
    of the TS-type-as-JSON-schema idea.
    """

    tag = "tuple"

    def __init__(self, members: Sequence[Type]) -> None:
        items = tuple(members)
        if not items:
            raise TypeError("a tuple type needs at least one member")
        for member in items:
            if not isinstance(member, Type):
                raise TypeError(f"tuple() takes Types, got {type(member).__name__}")
        self.members = items

    def typescript_with_prec(self, prec: int) -> str:
        rendered = ", ".join(
            member.typescript_with_prec(PREC_UNION) for member in self.members
        )
        return f"[{rendered}]"

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if not isinstance(value, list):
            return [TypeCheckIssue(path, f"expected an array, got {describe_json_value(value)}")]
        if len(value) != len(self.members):
            return [
                TypeCheckIssue(
                    path,
                    f"expected exactly {len(self.members)} elements, got {len(value)}",
                )
            ]
        issues: list[TypeCheckIssue] = []
        for index, (member, item) in enumerate(zip(self.members, value)):
            issues.extend(member.check(item, f"{path}[{index}]"))
        return issues

    def _coerce_unchecked(self, value: Any) -> list:
        return [
            member._coerce_unchecked(item) for member, item in zip(self.members, value)
        ]

    def children(self) -> tuple[Type, ...]:
        return self.members

    def _key(self) -> tuple:
        return self.members
