"""Table I constructor API for building AskIt types.

The paper's Python implementation exposes type constructors whose names
mirror the host language (``int``, ``list``, ``dict``...).  Import this
module qualified to use the paper's spelling::

    import repro.types as t

    Book = t.dict({"title": t.str, "author": t.str, "year": t.int})
    t.list(Book)
    t.union(t.literal("yes"), t.literal("no"))

Capitalized aliases (``Int``, ``List``...) are provided for callers who
prefer not to shadow builtins with a ``from``-import.
"""

from __future__ import annotations

import builtins
from typing import Any, Mapping

from repro.types.atoms import AnyType, BoolType, FloatType, IntType, NoneType, StrType
from repro.types.base import Type
from repro.types.composites import ListType, RecordType, TupleType, UnionType
from repro.types.literals import LiteralType

# Singleton atoms -- there is only one meaning of "number", so share them.
INT = IntType()
FLOAT = FloatType()
BOOL = BoolType()
STR = StrType()
NONE = NoneType()
ANY = AnyType()

_PYTHON_TYPE_MAP: dict[type, Type] = {
    builtins.int: INT,
    builtins.float: FLOAT,
    builtins.bool: BOOL,
    builtins.str: STR,
}


def lift(spec: Any) -> Type:
    """Lift a type specification into a :class:`Type`.

    Accepts existing ``Type`` objects, the Python builtins ``int``,
    ``float``, ``bool`` and ``str`` (so ``define(int, ...)`` works exactly
    as in the paper), ``None``/``NoneType`` for void, and plain dicts as
    record shorthand.
    """
    if isinstance(spec, Type):
        return spec
    if spec is None or spec is type(None):
        return NONE
    if isinstance(spec, builtins.type) and spec in _PYTHON_TYPE_MAP:
        return _PYTHON_TYPE_MAP[spec]
    if isinstance(spec, Mapping):
        return RecordType({name: lift(value) for name, value in spec.items()})
    raise TypeError(f"cannot interpret {spec!r} as an AskIt type")


def literal(value: Any) -> LiteralType:
    """The type containing exactly ``value`` (a JSON scalar)."""
    return LiteralType(value)


def union(*members: Any) -> Type:
    """Union of the given member types; collapses to the sole member if
    deduplication leaves just one."""
    lifted = [lift(member) for member in members]
    flat: list[Type] = []
    for member in lifted:
        parts = member.members if isinstance(member, UnionType) else (member,)
        for part in parts:
            if part not in flat:
                flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return UnionType(flat)


def tuple_of(*members: Any) -> TupleType:
    """Fixed-length tuple type ``[A, B, ...]``."""
    return TupleType([lift(member) for member in members])


# The shadowing constructors.  Defined with underscore-free public names so
# that ``t.list(t.int)`` reads exactly like the paper; the real builtins
# stay reachable through the ``builtins`` module above.


def _make_list(element: Any) -> ListType:
    return ListType(lift(element))


def _make_dict(fields: Mapping[str, Any]) -> RecordType:
    return RecordType({name: lift(value) for name, value in fields.items()})


int = INT  # noqa: A001 - intentional Table I spelling
float = FLOAT  # noqa: A001
bool = BOOL  # noqa: A001
str = STR  # noqa: A001
none = NONE
void = NONE
any = ANY  # noqa: A001
list = _make_list  # noqa: A001
dict = _make_dict  # noqa: A001

# Import-safe aliases.
Int = INT
Float = FLOAT
Bool = BOOL
Str = STR
Void = NONE
Any_ = ANY
List = _make_list
Dict = _make_dict
Literal = literal
Union = union
Tuple = tuple_of
