"""Literal types: a type inhabited by exactly one constant value.

TypeScript writes these as the constant itself (``'yes'``, ``123``,
``true``); unions of literals are AskIt's idiom for enumerations, e.g.
``union(literal('positive'), literal('negative'))``.
"""

from __future__ import annotations

from typing import Any

from repro.types.base import (
    Type,
    TypeCheckIssue,
    describe_json_value,
    render_typescript_value,
)

_ALLOWED_LITERAL_TYPES = (str, int, float, bool)


class LiteralType(Type):
    """The type whose only member is ``value``.

    ``value`` must be a JSON scalar (string, number, or boolean).  Numeric
    comparison is exact but cross-kind tolerant: ``literal(1)`` accepts the
    JSON number ``1.0`` and coerces it back to the canonical ``1``.
    """

    tag = "literal"

    def __init__(self, value: Any) -> None:
        if not isinstance(value, _ALLOWED_LITERAL_TYPES):
            raise TypeError(
                "literal() takes a string, number, or boolean, got "
                f"{type(value).__name__}"
            )
        self.value = value

    def typescript_with_prec(self, prec: int) -> str:
        return render_typescript_value(self.value)

    def check(self, value: Any, path: str = "$") -> list[TypeCheckIssue]:
        if self._matches(value):
            return []
        return [
            TypeCheckIssue(
                path,
                f"expected the literal {render_typescript_value(self.value)}, "
                f"got {describe_json_value(value)} ({value!r})",
            )
        ]

    def _matches(self, value: Any) -> bool:
        expected = self.value
        if isinstance(expected, bool) or isinstance(value, bool):
            return isinstance(value, bool) is isinstance(expected, bool) and value == expected
        if isinstance(expected, (int, float)) and isinstance(value, (int, float)):
            return float(value) == float(expected)
        return type(value) is type(expected) and value == expected

    def _coerce_unchecked(self, value: Any) -> Any:
        # Canonicalize to the declared constant (e.g. 1.0 -> 1).
        return self.value

    def _key(self) -> tuple:
        return (type(self.value).__name__, self.value)
