"""JSON Schema export for AskIt types.

The paper's related-work section notes that the OpenAI API's function
calling "can be used to implement AskIt": function calling constrains
model output with JSON Schema instead of TypeScript types.  This module
provides that bridge -- every AskIt type exports an equivalent (draft
2020-12 flavoured) JSON Schema -- so the runtime could target either
constraint mechanism.
"""

from __future__ import annotations

from typing import Any

from repro.types.atoms import AnyType, BoolType, FloatType, IntType, NoneType, StrType
from repro.types.base import Type
from repro.types.composites import ListType, RecordType, TupleType, UnionType
from repro.types.literals import LiteralType


def json_schema(type_: Type) -> dict[str, Any]:
    """The JSON Schema equivalent of an AskIt type."""
    if isinstance(type_, IntType):
        return {"type": "integer"}
    if isinstance(type_, FloatType):
        return {"type": "number"}
    if isinstance(type_, BoolType):
        return {"type": "boolean"}
    if isinstance(type_, StrType):
        return {"type": "string"}
    if isinstance(type_, NoneType):
        return {"type": "null"}
    if isinstance(type_, AnyType):
        return {}
    if isinstance(type_, LiteralType):
        return {"const": type_.value}
    if isinstance(type_, ListType):
        return {"type": "array", "items": json_schema(type_.element)}
    if isinstance(type_, TupleType):
        return {
            "type": "array",
            "prefixItems": [json_schema(member) for member in type_.members],
            "minItems": len(type_.members),
            "maxItems": len(type_.members),
        }
    if isinstance(type_, RecordType):
        return {
            "type": "object",
            "properties": {
                name: json_schema(field) for name, field in type_.fields.items()
            },
            "required": list(type_.fields),
            "additionalProperties": False,
        }
    if isinstance(type_, UnionType):
        # Unions of literals compact to an enum, the idiomatic schema form.
        if type_.is_enum_of_literals():
            return {"enum": [member.value for member in type_.members]}
        return {"anyOf": [json_schema(member) for member in type_.members]}
    raise TypeError(f"no JSON Schema translation for {type_!r}")


def response_schema(answer_type: Type) -> dict[str, Any]:
    """The schema of the full ``{reason, answer}`` response envelope."""
    return {
        "type": "object",
        "properties": {
            "reason": {"type": "string"},
            "answer": json_schema(answer_type),
        },
        "required": ["reason", "answer"],
        "additionalProperties": False,
    }
