"""Reproduction of AskIt (CGO 2024): a unified programming interface for
programming with large language models.

Public API (mirrors the paper's Python implementation)::

    from repro import ask, define
    import repro.types as t

    sentiment = ask(
        t.union(t.literal("positive"), t.literal("negative")),
        "What is the sentiment of {{review}}?",
        review="The product is fantastic.",
    )

    get_sentiment = define(
        t.union(t.literal("positive"), t.literal("negative")),
        "What is the sentiment of {{review}}?",
    )
    get_sentiment(review="It exceeds all my expectations.")

    factorial = define(t.int, "Calculate the factorial of {{n}}").compile()
    factorial(n=10)

Sessions (new front door)
-------------------------

``Session`` makes concurrency, batching, and backend selection
per-session properties instead of global state::

    from repro import Session

    session = Session(model="sim-gpt-4")          # isolated client + stats
    answer = session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)
    answer = await session.ask_async(t.int, "{{a}} + {{b}}?", a=2, b=3)

    classify = session.define(t.str, "Classify {{ticket}}.")
    batch = classify.map(tickets, max_concurrency=16)   # ordered, isolated
    print(session.stats, session.clock.elapsed_s)

Migration note: the module-level ``ask``/``define``/``configure``/
``config_override`` API is unchanged -- it is now a facade over a default
session that tracks the global configuration, so existing code keeps
working verbatim.  New code that needs isolation, async execution, or
``map()`` batching should construct a ``Session``.  Third-party backends
plug in through :func:`repro.llm.providers.register_provider` without
touching the client.
"""

__version__ = "1.1.0"

from repro.errors import AskItError

__all__ = [
    "AskItError",
    "ask",
    "define",
    "Session",
    "default_session",
    "Example",
    "configure",
    "get_config",
    "config_override",
    "__version__",
]

_LAZY_CORE = {
    "ask",
    "define",
    "Session",
    "default_session",
    "Example",
    "configure",
    "get_config",
    "config_override",
}


def __getattr__(name: str):
    # The core API is imported lazily so that `import repro.types` does not
    # pull in the full runtime stack.
    if name in _LAZY_CORE:
        from repro import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
