"""Reproduction of AskIt (CGO 2024): a unified programming interface for
programming with large language models.

Public API (mirrors the paper's Python implementation)::

    from repro import ask, define
    import repro.types as t

    sentiment = ask(
        t.union(t.literal("positive"), t.literal("negative")),
        "What is the sentiment of {{review}}?",
        review="The product is fantastic.",
    )

    get_sentiment = define(
        t.union(t.literal("positive"), t.literal("negative")),
        "What is the sentiment of {{review}}?",
    )
    get_sentiment(review="It exceeds all my expectations.")

    factorial = define(t.int, "Calculate the factorial of {{n}}").compile()
    factorial(n=10)

Sessions (new front door)
-------------------------

``Session`` makes concurrency, batching, and backend selection
per-session properties instead of global state::

    from repro import Session

    session = Session(model="sim-gpt-4")          # isolated client + stats
    answer = session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)
    answer = await session.ask_async(t.int, "{{a}} + {{b}}?", a=2, b=3)

    classify = session.define(t.str, "Classify {{ticket}}.")
    batch = classify.map(tickets, max_concurrency=16)   # ordered, isolated
    print(session.stats, session.clock.elapsed_s)

Migration note: the module-level ``ask``/``define``/``configure``/
``config_override`` API is unchanged -- it is now a facade over a default
session that tracks the global configuration, so existing code keeps
working verbatim.  New code that needs isolation, async execution, or
``map()`` batching should construct a ``Session``.  Third-party backends
plug in through :func:`repro.llm.providers.register_provider` without
touching the client.

Response caching (persistent, with request coalescing)
------------------------------------------------------

``cache="read-write"`` persists every completion under
``cache_dir/responses/`` and replays it on any later identical request,
at zero simulated latency; concurrent identical requests coalesce onto
one provider call (see ``docs/caching.md``)::

    session = Session(model="sim-gpt-4", cache_dir="askit",
                      cache="read-write")
    session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)   # provider call
    session.ask(t.int, "{{a}} + {{b}}?", a=2, b=3)   # cache hit
    session.stats.cache_hits                          # -> 1

Request scheduling (rate limits, adaptive concurrency, deadlines)
-----------------------------------------------------------------

``scheduler="adaptive"`` routes provider calls through an admission
gate: per-model token buckets pace requests/min and tokens/min, an
AIMD window adapts concurrency to observed latency and 429s,
priorities order contending requests, and deadlines fail hopeless
requests fast.  Waits are charged to the virtual clock, never slept
(see ``docs/scheduling.md``)::

    session = Session(model="sim-gpt-4", scheduler="adaptive",
                      requests_per_minute=120)
    batch = session.define(t.str, "Classify {{x}}.").map(items)
    session.stats.throttled, session.stats.throttle_wait_s

Exported names
--------------

===================  =======================================================
``ask``              Perform a task once; returns the typed answer.
                     ``ask(t.int, 'How many legs do {{n}} spiders have?', n=3)``
``define``           Package a template as a reusable typed function.
                     ``fn = define(t.str, 'Summarize {{text}}.'); fn(text=...)``
``Session``          An isolated runtime: config + client + stats + caches.
                     ``Session(model='sim-gpt-4').ask(t.int, '{{a}}+{{b}}?', a=1, b=2)``
``default_session``  The process-default session behind ``ask``/``define``.
                     ``default_session().stats``
``Example``          One input/output pair for few-shot or test examples.
                     ``Example({'n': 3}, 6)``
``configure``        Update the global configuration in place.
                     ``configure(model='sim-gpt-3.5-turbo-16k')``
``get_config``       Read the active global configuration.
                     ``get_config().model``
``config_override``  Temporarily override the global configuration.
                     ``with config_override(cache='read-write'): ...``
``AskItError``       Base class of every library error.
                     ``except AskItError: ...``
``__version__``      The package version string.
===================  =======================================================
"""

__version__ = "1.1.0"

from repro.errors import AskItError

__all__ = [
    "AskItError",
    "ask",
    "define",
    "Session",
    "default_session",
    "Example",
    "configure",
    "get_config",
    "config_override",
    "__version__",
]

_LAZY_CORE = {
    "ask",
    "define",
    "Session",
    "default_session",
    "Example",
    "configure",
    "get_config",
    "config_override",
}


def __getattr__(name: str):
    # The core API is imported lazily so that `import repro.types` does not
    # pull in the full runtime stack.
    if name in _LAZY_CORE:
        from repro import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
