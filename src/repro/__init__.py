"""Reproduction of AskIt (CGO 2024): a unified programming interface for
programming with large language models.

Public API (mirrors the paper's Python implementation)::

    from repro import ask, define
    import repro.types as t

    sentiment = ask(
        t.union(t.literal("positive"), t.literal("negative")),
        "What is the sentiment of {{review}}?",
        review="The product is fantastic.",
    )

    get_sentiment = define(
        t.union(t.literal("positive"), t.literal("negative")),
        "What is the sentiment of {{review}}?",
    )
    get_sentiment(review="It exceeds all my expectations.")

    factorial = define(t.int, "Calculate the factorial of {{n}}").compile()
    factorial(n=10)
"""

__version__ = "1.0.0"

from repro.errors import AskItError

__all__ = ["AskItError", "ask", "define", "Example", "configure", "get_config", "__version__"]


def __getattr__(name: str):
    # The core API is imported lazily so that `import repro.types` does not
    # pull in the full runtime stack.
    if name in {"ask", "define", "Example", "configure", "get_config"}:
        from repro import core

        return getattr(core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
