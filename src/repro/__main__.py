"""Command-line entry point: regenerate the paper's artifacts.

Usage::

    python -m repro list
    python -m repro run table2
    python -m repro run all
"""

from __future__ import annotations

import sys

_EXPERIMENTS = {
    "table2": "Table II  - 50 common coding tasks (LOC + retries)",
    "fig5": "Figure 5  - HumanEval generated vs hand-written LOC",
    "fig6": "Figure 6  - OpenAI-Evals prompt-length reduction",
    "fig7": "Figure 7  - response-type usage census",
    "table3": "Table III - GSM8K direct answering vs generated code",
    "ablation_prompt": "E6 - feedback retries under corruption",
    "ablation_examples": "E7 - RQ2, validation examples vs shipped bugs",
}


def _usage() -> str:
    lines = [
        "usage: python -m repro <command>",
        "",
        "commands:",
        "  list           show the available experiments",
        "  run <name>     regenerate one artifact (or 'all')",
    ]
    return "\n".join(lines)


def _list() -> int:
    width = max(len(name) for name in _EXPERIMENTS)
    for name, description in _EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _run(name: str) -> int:
    import importlib

    names = list(_EXPERIMENTS) if name == "all" else [name]
    unknown = [candidate for candidate in names if candidate not in _EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("run 'python -m repro list' to see the choices", file=sys.stderr)
        return 2
    for candidate in names:
        module = importlib.import_module(f"repro.evalx.experiments.{candidate}")
        print(f"=== {candidate}: {_EXPERIMENTS[candidate]} ===")
        module.main()
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_usage())
        return 0
    command = argv[0]
    if command == "list":
        return _list()
    if command == "run":
        if len(argv) != 2:
            print(_usage(), file=sys.stderr)
            return 2
        return _run(argv[1])
    print(f"unknown command {command!r}\n\n{_usage()}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
