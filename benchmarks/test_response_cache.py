"""Benchmark: the persistent response cache on a repeated 24-task workload.

The tentpole acceptance criterion for the response cache
(:mod:`repro.core.response_cache`): re-running a 24-task ``map()``
workload against a warm cache must finish at least **5x** faster on the
virtual clock than the cold run that populated it, with
:class:`~repro.llm.client.ClientStats` accounting every hit, miss, and
coalesced call.  Sessions are fresh for every run -- only the on-disk
cache directory is shared -- so the speedup is entirely due to response
replay, not in-process state.

A second benchmark exercises the warm-cache sweep of the Table 2
experiment driver end-to-end (codegen traffic included).
"""

import pytest

import repro.types as t
from benchmarks.snapshots import write_snapshot
from repro.core import Session
from repro.evalx.experiments import table2
from repro.llm import ChatClient, QUIET, NoisePolicy

TASK_COUNT = 24
MAX_CONCURRENCY = 8

TEMPLATE = "Calculate the factorial of {{n}}."


def fresh_session(cache_dir, mode="read-write") -> Session:
    return Session(
        model="sim-gpt-4",
        cache_dir=cache_dir,
        cache=mode,
        client=ChatClient(noise_policy=QUIET),
    )


def bindings() -> list[dict]:
    return [{"n": 1 + (i % 12)} for i in range(TASK_COUNT)]


def run_workload(cache_dir) -> tuple[list, float, Session]:
    session = fresh_session(cache_dir)
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
    return list(batch), session.clock.elapsed_s, session


class TestWarmCacheSpeedup:
    def test_warm_run_is_5x_faster_with_full_accounting(self, tmp_path, benchmark):
        cache_dir = tmp_path / "askit"

        cold_values, cold_s, cold_session = run_workload(cache_dir)
        warm_values, warm_s, warm_session = benchmark.pedantic(
            run_workload, args=(cache_dir,), rounds=1, iterations=1
        )

        # Same answers in input order, cold and warm.
        assert warm_values == cold_values
        assert len(warm_values) == TASK_COUNT

        # The acceptance criterion: >= 5x on the virtual clock.
        assert cold_s > 0
        assert warm_s * 5 <= cold_s, (
            f"warm run took {warm_s:.2f} virtual seconds vs {cold_s:.2f} cold "
            f"-- expected >= 5x speedup from the response cache"
        )

        # Cold run: 12 unique prompts reach the provider; the 12 duplicate
        # bindings are served by the cache (as hits or coalesced calls,
        # depending on in-flight timing).  Nothing is double-charged.
        cold = cold_session.stats
        assert cold.calls == 12
        assert cold.cache_misses == 12
        assert cold.cache_hits + cold.coalesced == TASK_COUNT - 12

        # Warm run: pure replay -- no provider calls, no tokens.
        warm = warm_session.stats
        assert warm.calls == 0
        assert warm.cache_misses == 0
        assert warm.cache_hits + warm.coalesced == TASK_COUNT
        assert warm.prompt_tokens == warm.completion_tokens == 0

        # Per-model breakdown carries the same counters.
        per_model = warm.per_model["sim-gpt-4"]
        assert per_model.calls == 0
        assert per_model.cache_hits + per_model.coalesced == TASK_COUNT

        write_snapshot(
            "response_cache",
            {
                "tasks": TASK_COUNT,
                "cold_virtual_s": cold_s,
                "warm_virtual_s": warm_s,
                "speedup_x": (cold_s / warm_s) if warm_s else None,
                "cold_calls": cold.calls,
                "warm_calls": warm.calls,
                "warm_hits_plus_coalesced": warm.cache_hits + warm.coalesced,
            },
        )

    def test_identical_in_flight_requests_coalesce(self, tmp_path):
        session = fresh_session(tmp_path / "askit")
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map([{"n": 7}] * TASK_COUNT, max_concurrency=MAX_CONCURRENCY, dedup=False)
        assert list(batch) == [5040] * TASK_COUNT
        # Exactly one provider call: every other lane coalesced onto it
        # or replayed the stored entry, guaranteed by the cache's
        # store-before-release ordering.
        assert session.stats.calls == 1
        assert session.stats.cache_misses == 1
        assert session.stats.cache_hits + session.stats.coalesced == TASK_COUNT - 1

    def test_read_mode_replays_but_never_persists(self, tmp_path):
        cache_dir = tmp_path / "askit"
        run_workload(cache_dir)  # populate read-write

        session = fresh_session(cache_dir, mode="read")
        fn = session.define(t.int, TEMPLATE)
        fn(n=99)  # unseen prompt: a miss that must NOT be persisted
        assert session.stats.cache_misses == 1

        replay = fresh_session(cache_dir, mode="read")
        fn2 = replay.define(t.int, TEMPLATE)
        fn2(n=1)  # seen in the cold run: replays
        fn2(n=99)  # still a miss: read mode persisted nothing
        assert replay.stats.cache_hits == 1
        assert replay.stats.cache_misses == 1


class TestTable2WarmSweep:
    def test_warm_sweep_replays_the_whole_experiment(self, tmp_path, benchmark):
        # Noise-free so every row is deterministic across cold and warm.
        noise = NoisePolicy(direct_corruption_rate=0.0, buggy_code_rate=0.0, seed=7)
        cold, warm = benchmark.pedantic(
            table2.run_cache_sweep,
            args=(tmp_path / "askit",),
            kwargs={"noise": noise},
            rounds=1,
            iterations=1,
        )
        assert len(cold.rows) == 50 and len(warm.rows) == 50
        # Same table, cold and warm.
        for cold_row, warm_row in zip(cold.rows, warm.rows):
            assert (cold_row.ts_loc, cold_row.py_loc) == (warm_row.ts_loc, warm_row.py_loc)
        # The warm sweep never touches a provider and collapses to ~zero
        # simulated wall-clock.
        assert warm.client_stats.calls == 0
        assert warm.client_stats.cache_hits > 0
        assert cold.wall_s > 0
        assert warm.wall_s * 5 <= cold.wall_s


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
