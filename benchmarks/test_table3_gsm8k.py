"""Benchmark E5: regenerate Table III (GSM8K direct vs generated).

The full experiment covers 1,319 problems; the benchmark subsamples
(``REPRO_GSM8K_COUNT``, default 144 here) -- every family still appears
four times, and the Table III averages are per-problem means, so the
subsample preserves the reported shape.
"""

import os

from repro.evalx.experiments import table3

COUNT = int(os.environ.get("REPRO_GSM8K_COUNT", "144"))


def test_table3_regeneration(one_shot):
    results = one_shot(table3.run, COUNT)
    print()
    print(table3.render(results))
    ts = results["typescript"]
    py = results["python"]
    # Paper: ~86-88 % solved directly; nearly all solved problems compile.
    assert 0.75 <= ts.solved_directly / ts.total <= 0.95
    assert ts.generated >= 0.9 * ts.solved_directly
    # Latencies are seconds; executions are microseconds.
    assert ts.latency.value > 5.0
    assert py.execution.value < 100e-6
    # The headline: generated code beats the LLM by orders of magnitude,
    # and Python's speedup exceeds TypeScript's (its executor is faster).
    assert ts.speedup > 50_000
    assert py.speedup > ts.speedup
