"""Scheduled vs naive ``map()`` throughput under a provider rate limit.

The scheduler's acceptance criterion: against a simulated provider that
rate-limits (429 + Retry-After), a scheduled 24-task ``map()`` must
complete every task with zero drops and at least 2x lower *virtual*
wall-clock than the naive unscheduled baseline.

Both sides face an identically configured
:class:`~repro.llm.ratelimit.SimulatedRateLimit`.  The naive client
fires all workers at once, draws refusals, and pays exponentially
backed-off Retry-After penalties; the scheduler paces admission through
a same-shaped token bucket, so its requests conform by construction and
the only cost is the exact pacing wait.  Everything is charged to the
virtual clock -- no sleeping -- so the comparison reproduces.
"""

import pytest

import repro.types as t
from benchmarks.snapshots import write_snapshot
from repro.core import SchedulerPolicy, Session
from repro.llm import ChatClient, QUIET, SimulatedRateLimit

TASK_COUNT = 24
MAX_CONCURRENCY = 8

#: The provider tolerates 1 request/s with a 2-deep burst and hands out
#: punitive 30s Retry-After hints -- the regime where admission control
#: pays off most.
REQUESTS_PER_MINUTE = 60.0
BURST = 2
MIN_RETRY_AFTER_S = 30.0

TEMPLATE = "Calculate the factorial of {{n}}."

EXPECTED = {n: 1 for n in range(1, 13)}
for n in range(2, 13):
    EXPECTED[n] = EXPECTED[n - 1] * n


def limited_client() -> ChatClient:
    return ChatClient(
        noise_policy=QUIET,
        rate_limit=SimulatedRateLimit(
            REQUESTS_PER_MINUTE, burst=BURST, min_retry_after_s=MIN_RETRY_AFTER_S
        ),
    )


def bindings() -> list[dict]:
    return [{"n": 1 + (i % 12)} for i in range(TASK_COUNT)]


def run_naive() -> tuple[Session, list]:
    session = Session(model="sim-gpt-4", cache_dir=None, client=limited_client())
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
    return session, batch


def run_scheduled() -> tuple[Session, list]:
    session = Session(
        model="sim-gpt-4",
        cache_dir=None,
        scheduler="adaptive",
        scheduler_policy=SchedulerPolicy(
            requests_per_minute=REQUESTS_PER_MINUTE, burst=BURST
        ),
        client=limited_client(),
    )
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
    return session, batch


class TestSchedulerThroughput:
    def test_scheduled_map_beats_naive_backoff_by_2x(self, benchmark):
        naive_session, naive_batch = run_naive()
        scheduled_session, scheduled_batch = benchmark.pedantic(
            run_scheduled, rounds=1, iterations=1
        )

        # Zero drops: every task completed with the right answer.
        assert scheduled_batch.ok
        assert list(scheduled_batch) == [EXPECTED[b["n"]] for b in bindings()]
        assert len(scheduled_batch) == TASK_COUNT

        # The naive baseline also completes (backoff eventually conforms)
        # -- the contrast is purely in virtual wall-clock.
        naive_s = naive_session.clock.elapsed_s
        scheduled_s = scheduled_session.clock.elapsed_s
        assert naive_s > 0
        assert scheduled_s * 2 <= naive_s, (
            f"scheduled map() took {scheduled_s:.2f} virtual seconds vs "
            f"{naive_s:.2f} naive -- expected >= 2x speedup"
        )

        # ClientStats reports what happened: the scheduler paid pacing
        # waits (and zero refusals), the naive client paid 429 penalties.
        scheduled_stats = scheduled_session.stats
        assert scheduled_stats.throttled > 0
        assert scheduled_stats.throttle_wait_s > 0.0
        assert scheduled_stats.rate_limited == 0
        assert scheduled_stats.requeued == 0
        per_model = scheduled_stats.for_model("sim-gpt-4")
        assert per_model.throttled == scheduled_stats.throttled
        assert per_model.throttle_wait_s == pytest.approx(
            scheduled_stats.throttle_wait_s
        )
        assert naive_session.stats.rate_limited > 0

        write_snapshot(
            "scheduler",
            {
                "tasks": TASK_COUNT,
                "naive_virtual_s": naive_s,
                "scheduled_virtual_s": scheduled_s,
                "speedup_x": naive_s / scheduled_s,
                "naive_rate_limited": naive_session.stats.rate_limited,
                "scheduled_throttled": scheduled_stats.throttled,
            },
        )

    def test_adaptive_only_scheduler_recovers_via_requeue(self):
        """Without a configured rate bucket the scheduler still converges:
        refusals shrink the AIMD window, requeues charge the Retry-After,
        and every task completes."""
        session = Session(
            model="sim-gpt-4",
            cache_dir=None,
            scheduler="adaptive",
            client=limited_client(),
        )
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
        assert batch.ok
        assert len(batch) == TASK_COUNT
        stats = session.stats
        # The throttle events that occurred are all accounted: every
        # refusal the provider issued shows up as a requeue.
        assert stats.rate_limited > 0
        assert stats.requeued == stats.rate_limited
        assert session.scheduler.adaptive_state("sim-gpt-4").window < 8.0

    def test_scheduled_sweep_is_reproducible(self):
        _, first = run_scheduled()
        _, second = run_scheduled()
        assert first.wall_s == pytest.approx(second.wall_s)
        assert list(first) == list(second)
