"""Micro-benchmark: sequential calls vs ``map()`` on the simulated backend.

The redesign's acceptance criterion: fanning >= 20 tasks through
``AskItFunction.map`` must finish in measurably lower *virtual*
wall-clock than the same calls issued sequentially.  Simulated latency is
charged to each session's :class:`~repro.llm.latency.VirtualClock`, so
the comparison is deterministic-ish and sleep-free: the sequential run
advances its clock by the sum of all call latencies, while the batched
run advances it only by the longest worker lane.
"""

import pytest

import repro.types as t
from benchmarks.snapshots import write_snapshot
from repro.core import Session
from repro.llm import ChatClient, QUIET

TASK_COUNT = 24
MAX_CONCURRENCY = 8

TEMPLATE = "Calculate the factorial of {{n}}."


def fresh_session() -> Session:
    return Session(
        model="sim-gpt-4",
        cache_dir=None,
        client=ChatClient(noise_policy=QUIET),
    )


def bindings() -> list[dict]:
    return [{"n": 1 + (i % 12)} for i in range(TASK_COUNT)]


def run_sequential() -> tuple[list, float]:
    session = fresh_session()
    fn = session.define(t.int, TEMPLATE)
    values = [fn(**binding) for binding in bindings()]
    return values, session.clock.elapsed_s


def run_batched() -> tuple[list, float]:
    session = fresh_session()
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
    return list(batch), session.clock.elapsed_s


class TestBatchThroughput:
    def test_map_beats_sequential_virtual_wall_clock(self, benchmark):
        sequential_values, sequential_s = run_sequential()
        batched_values, batched_s = benchmark.pedantic(
            run_batched, rounds=3, iterations=1
        )

        # Same answers, in input order.
        assert batched_values == sequential_values
        assert len(batched_values) == TASK_COUNT

        # The batch must be *measurably* faster on the virtual clock: with
        # 8 workers the ideal is ~8x; require at least 2x to stay robust
        # against uneven worker lanes.
        assert sequential_s > 0
        assert batched_s < sequential_s / 2, (
            f"map() took {batched_s:.2f} virtual seconds vs "
            f"{sequential_s:.2f} sequential -- expected >= 2x speedup"
        )
        write_snapshot(
            "batch_throughput",
            {
                "tasks": TASK_COUNT,
                "max_concurrency": MAX_CONCURRENCY,
                "sequential_virtual_s": sequential_s,
                "batched_virtual_s": batched_s,
                "speedup": sequential_s / batched_s,
            },
        )

    def test_dedup_collapses_identical_prompts(self):
        session = fresh_session()
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map([{"n": 7}] * TASK_COUNT, max_concurrency=MAX_CONCURRENCY)
        assert list(batch) == [5040] * TASK_COUNT
        assert session.stats.calls == 1

    def test_reported_speedup_is_consistent(self):
        session = fresh_session()
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
        assert batch.wall_s == pytest.approx(session.clock.elapsed_s)
        assert batch.speedup == pytest.approx(batch.sequential_s / batch.wall_s)
        assert batch.speedup > 2.0
