"""Micro-benchmark: sequential calls vs ``map()`` on the simulated backend.

The redesign's acceptance criterion: fanning >= 20 tasks through
``AskItFunction.map`` must finish in measurably lower *virtual*
wall-clock than the same calls issued sequentially.  Simulated latency is
charged to each session's :class:`~repro.llm.latency.VirtualClock`, so
the comparison is deterministic-ish and sleep-free: the sequential run
advances its clock by the sum of all call latencies, while the batched
run advances it only by the longest worker lane.
"""

import pytest

import repro.types as t
from benchmarks.snapshots import write_snapshot
from repro.core import SchedulerPolicy, Session
from repro.llm import ChatClient, QUIET

TASK_COUNT = 24
MAX_CONCURRENCY = 8
COALESCE_TASKS = 48

TEMPLATE = "Calculate the factorial of {{n}}."


def fresh_session() -> Session:
    return Session(
        model="sim-gpt-4",
        cache_dir=None,
        client=ChatClient(noise_policy=QUIET),
    )


def bindings() -> list[dict]:
    return [{"n": 1 + (i % 12)} for i in range(TASK_COUNT)]


def run_sequential() -> tuple[list, float]:
    session = fresh_session()
    fn = session.define(t.int, TEMPLATE)
    values = [fn(**binding) for binding in bindings()]
    return values, session.clock.elapsed_s


def run_batched() -> tuple[list, float]:
    session = fresh_session()
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
    return list(batch), session.clock.elapsed_s


class TestBatchThroughput:
    def test_map_beats_sequential_virtual_wall_clock(self, benchmark):
        sequential_values, sequential_s = run_sequential()
        batched_values, batched_s = benchmark.pedantic(
            run_batched, rounds=3, iterations=1
        )

        # Same answers, in input order.
        assert batched_values == sequential_values
        assert len(batched_values) == TASK_COUNT

        # The batch must be *measurably* faster on the virtual clock: with
        # 8 workers the ideal is ~8x; require at least 2x to stay robust
        # against uneven worker lanes.
        assert sequential_s > 0
        assert batched_s < sequential_s / 2, (
            f"map() took {batched_s:.2f} virtual seconds vs "
            f"{sequential_s:.2f} sequential -- expected >= 2x speedup"
        )
        write_snapshot(
            "batch_throughput",
            {
                "tasks": TASK_COUNT,
                "max_concurrency": MAX_CONCURRENCY,
                "sequential_virtual_s": sequential_s,
                "batched_virtual_s": batched_s,
                "speedup": sequential_s / batched_s,
            },
        )

    def test_dedup_collapses_identical_prompts(self):
        session = fresh_session()
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map([{"n": 7}] * TASK_COUNT, max_concurrency=MAX_CONCURRENCY)
        assert list(batch) == [5040] * TASK_COUNT
        assert session.stats.calls == 1

    def test_reported_speedup_is_consistent(self):
        session = fresh_session()
        fn = session.define(t.int, TEMPLATE)
        batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY, dedup=False)
        assert batch.wall_s == pytest.approx(session.clock.elapsed_s)
        assert batch.speedup == pytest.approx(batch.sequential_s / batch.wall_s)
        assert batch.speedup > 2.0


def scheduled_session(max_batch: int) -> Session:
    """A rate-limited session; ``max_batch > 1`` turns on coalescing."""
    return Session(
        model="sim-gpt-4",
        cache="off",
        cache_dir=None,
        temperature=0.0,
        scheduler="adaptive",
        scheduler_policy=SchedulerPolicy(
            requests_per_minute=120, max_batch=max_batch, batch_window_s=60.0
        ),
        client=ChatClient(noise_policy=QUIET),
    )


def run_scheduled(max_batch: int) -> tuple[Session, list]:
    session = scheduled_session(max_batch)
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(
        [{"n": 1 + (i % 12)} for i in range(COALESCE_TASKS)],
        max_concurrency=MAX_CONCURRENCY,
        dedup=False,
    )
    assert batch.ok
    session.last_map = batch  # stash for the caller
    return session, list(batch)


class TestBatchCoalescing:
    """Cross-request batching: grouped wire calls under a rate limit.

    The tentpole's second half: a 48-task map over the batch-capable
    simulated provider must coalesce its cache-missing requests into
    grouped wire calls -- at least halving the wire traffic and beating
    the solo run's virtual wall-clock, with zero reordering.
    """

    def test_grouped_wire_calls_halve_the_traffic(self):
        solo_session, solo_values = run_scheduled(max_batch=1)
        batched_session, batched_values = run_scheduled(max_batch=16)

        # Byte-identical answers, in input order.
        assert batched_values == solo_values
        assert len(batched_values) == COALESCE_TASKS

        solo_wire = solo_session.client.provider_for("sim-gpt-4").wire_calls
        batched_wire = batched_session.client.provider_for("sim-gpt-4").wire_calls
        assert solo_session.stats.batch_calls == 0
        assert batched_session.stats.batch_calls >= 1
        # The acceptance criterion: >= 2x fewer wire round-trips.
        assert batched_wire * 2 <= solo_wire, (
            f"batching made {batched_wire} wire calls vs {solo_wire} solo -- "
            "expected at least a 2x reduction"
        )
        # Stats identity: every grouped call collapses its members into
        # one round-trip.
        stats = batched_session.stats
        assert stats.calls - stats.batched + stats.batch_calls == batched_wire

        # Fewer admission waits under the same 120 rpm limit: the
        # batched run's virtual wall-clock must come in lower.
        solo_wall = solo_session.last_map.wall_s
        batched_wall = batched_session.last_map.wall_s
        assert batched_wall < solo_wall

        write_snapshot(
            "batch_coalescing",
            {
                "tasks": COALESCE_TASKS,
                "max_concurrency": MAX_CONCURRENCY,
                "max_batch": 16,
                "requests_per_minute": 120,
                "wire_calls_solo": solo_wire,
                "wire_calls_batched": batched_wire,
                "wire_reduction_x": solo_wire / batched_wire,
                "batch_calls": stats.batch_calls,
                "batched_requests": stats.batched,
                "mean_group_size": stats.batched / stats.batch_calls,
                "solo_virtual_s": solo_wall,
                "batched_virtual_s": batched_wall,
            },
        )
