"""Benchmark E4: regenerate Figure 7 (response-type usage census)."""

from repro.evalx.experiments import fig7


def test_fig7_regeneration(one_shot):
    result = one_shot(fig7.run)
    print()
    print(fig7.render(result))
    # Paper: string is the most frequent top-level type, number next;
    # literal is frequent overall but never top-level.
    ranked = [name for name, _ in result.top_level.most_common()]
    assert ranked[0] == "string"
    assert "number" in ranked[:3]
    assert result.top_level.get("literal", 0) == 0
    assert result.all_types["literal"] >= 10
