"""Telemetry-overhead gate: tracing must not distort the workload.

The observability layer's acceptance criterion: running the standard
24-task ``map()`` with ``telemetry="on"`` must finish within 5% of the
telemetry-off virtual wall-clock.  Spans are *stamped* from the virtual
clock, never charged to it, so the two runs should in fact be
identical -- the 5% envelope only absorbs worker-lane scheduling
nondeterminism in how latencies pack onto the pool.

The committed ``BENCH_telemetry.json`` snapshot records both sides plus
the per-span bookkeeping volume, so a change that starts charging (or
dropping) time shows up as a diff in review.
"""

import pytest

import repro.types as t
from benchmarks.snapshots import write_snapshot
from repro.core import Session
from repro.llm import ChatClient, QUIET

TASK_COUNT = 24
MAX_CONCURRENCY = 8

#: The acceptance envelope: telemetry-on virtual wall-clock may exceed
#: telemetry-off by at most this fraction.
MAX_OVERHEAD = 0.05

TEMPLATE = "Calculate the factorial of {{n}}."


def fresh_session(telemetry: str) -> Session:
    return Session(
        model="sim-gpt-4",
        cache_dir=None,
        client=ChatClient(noise_policy=QUIET),
        telemetry=telemetry,
    )


def bindings() -> list[dict]:
    return [{"n": 1 + i} for i in range(TASK_COUNT)]


def run_map(telemetry: str) -> tuple[Session, float]:
    session = fresh_session(telemetry)
    fn = session.define(t.int, TEMPLATE)
    batch = fn.map(bindings(), max_concurrency=MAX_CONCURRENCY)
    assert len(list(batch)) == TASK_COUNT
    return session, session.clock.elapsed_s


class TestTelemetryOverhead:
    def test_tracing_stays_within_the_overhead_envelope(self):
        _, off_s = run_map("off")
        traced_session, on_s = run_map("on")

        assert off_s > 0
        overhead = on_s / off_s - 1.0
        assert overhead <= MAX_OVERHEAD, (
            f"telemetry-on map took {on_s:.3f} virtual seconds vs "
            f"{off_s:.3f} with telemetry off -- {overhead:.1%} overhead "
            f"exceeds the {MAX_OVERHEAD:.0%} gate"
        )
        # Stamping is free on the virtual clock: the runs are identical,
        # not merely close.
        assert on_s == pytest.approx(off_s)

        spans = traced_session.telemetry.spans()
        assert len(spans) >= TASK_COUNT * 6  # full waterfall per item
        write_snapshot(
            "telemetry",
            {
                "tasks": TASK_COUNT,
                "max_concurrency": MAX_CONCURRENCY,
                "telemetry_off_virtual_s": off_s,
                "telemetry_on_virtual_s": on_s,
                "overhead_ratio": on_s / off_s,
                "spans_per_map": len(spans),
                "traces_per_map": len(traced_session.telemetry.traces()),
            },
        )

    def test_disabled_telemetry_emits_nothing(self):
        session, _ = run_map("off")
        assert session.telemetry is None
        assert session.client.telemetry is None
