"""Microbenchmarks of the substrates underlying the experiments.

These quantify the moving parts of Table III's pipeline: prompt
synthesis, answer parsing, type validation, and the two execution hosts
(CPython ``exec`` vs the bundled TypeScript interpreter) whose speed gap
explains why the paper's TypeScript execution times exceed Python's here.
"""

import repro.types as t
from repro.core import load_host
from repro.parsing import extract_answer, loads_relaxed
from repro.prompts import build_direct_prompt
from repro.templates import PromptTemplate
from repro.tslang import load_module
from repro.types import parse_type

_TEMPLATE = PromptTemplate("List {{n}} classic books on {{subject}}.")
_BOOK = t.dict({"title": t.str, "author": t.str, "year": t.int})
_ANSWER_TYPE = t.list(_BOOK)

_RESPONSE = (
    "```json\n"
    '{"reason": "I recalled well-known classics and checked the years.",'
    ' "answer": [{"title": "A", "author": "B", "year": 1975},'
    ' {"title": "C", "author": "D", "year": 1984}]}\n'
    "```\n"
)

_TS_SOURCE = (
    "export function runningSum({ns}: {ns: number[]}): number[] {\n"
    "    const result = [];\n"
    "    let total = 0;\n"
    "    for (const x of ns) {\n"
    "        total += x;\n"
    "        result.push(total);\n"
    "    }\n"
    "    return result;\n"
    "}\n"
)

_PY_SOURCE = (
    "def running_sum(ns):\n"
    "    result = []\n"
    "    total = 0\n"
    "    for x in ns:\n"
    "        total += x\n"
    "        result.append(total)\n"
    "    return result\n"
)

_ARGS = {"ns": list(range(50))}


def test_bench_prompt_synthesis(benchmark):
    prompt = benchmark(
        build_direct_prompt, _TEMPLATE, _ANSWER_TYPE, {"n": 5, "subject": "compilers"}
    )
    assert "```ts" in prompt


def test_bench_answer_extraction(benchmark):
    parsed = benchmark(extract_answer, _RESPONSE, _ANSWER_TYPE)
    assert len(parsed.value) == 2


def test_bench_relaxed_json(benchmark):
    value = benchmark(loads_relaxed, "{'a': [1, 2, 3,], /* c */ b: 'x'}")
    assert value["a"] == [1, 2, 3]


def test_bench_type_parse(benchmark):
    parsed = benchmark(
        parse_type, "{ reason: string; answer: { title: string; year: number }[] }"
    )
    assert parsed.typescript().startswith("{ reason")


def test_bench_type_validation(benchmark):
    value = [{"title": "A", "author": "B", "year": 1975}] * 20
    assert benchmark(_ANSWER_TYPE.validate, value)


def test_bench_tslang_parse(benchmark):
    module = benchmark(load_module, _TS_SOURCE)
    assert module.function_names() == ["runningSum"]


def test_bench_execution_python_host(benchmark):
    host = load_host("python", _PY_SOURCE, "running_sum")
    result = benchmark(host.call, _ARGS)
    assert result[-1] == sum(range(50))


def test_bench_execution_typescript_host(benchmark):
    host = load_host("typescript", _TS_SOURCE, "runningSum")

    def call():
        host._module.reset_steps()
        return host.call(_ARGS)

    result = benchmark(call)
    assert result[-1] == sum(range(50))
