"""Benchmark E2: regenerate Figure 5 (HumanEval LOC scatter)."""

import pytest

from repro.evalx.experiments import fig5


def test_fig5_regeneration(one_shot):
    result = one_shot(fig5.run)
    print()
    print(fig5.render(result))
    # Paper: 84.8 % success; generated 1.27x hand-written; shorter in 35.3 %.
    assert result.success_rate == pytest.approx(0.848, abs=0.03)
    assert 1.0 < result.loc_ratio < 1.6
    assert 0.2 < result.shorter_fraction < 0.5
    assert result.mean_askit_loc == pytest.approx(23.74, abs=4.0)
