"""Scale benchmark: the segment store at ~1M entries.

The sharded log-structured backend exists so the response cache can
hold a million entries without lookup or eviction latency drifting with
the entry count.  This benchmark pins that claim:

* **flat lookups** -- mean ``get()`` latency at scale must stay within
  a small factor of a 10k-entry baseline (both are one dict probe plus
  one ``pread``);
* **flat evictions** -- mean ``put()`` latency into a *full* bounded
  store (every insert evicts) likewise;
* **bounded cold opens** -- reopening the scale store replays segment
  headers only, and must finish in seconds, not minutes.

By default the scale store holds ~120k entries so CI stays quick; set
``REPRO_CACHE_SCALE=1000000`` to reproduce the committed
``BENCH_cache_store.json`` at the full million.  Latencies here are
real wall-clock (the store does real I/O; there is nothing virtual to
measure), so the committed snapshot's absolute numbers are
host-dependent -- the *ratios* are the acceptance criteria.
"""

import os
import random
import time

from benchmarks.snapshots import write_snapshot
from repro.core.cache_store import SegmentStore

BASELINE_ENTRIES = 10_000
SCALE_ENTRIES = int(os.environ.get("REPRO_CACHE_SCALE", "120000"))
LOOKUP_SAMPLES = 5_000
EVICT_SAMPLES = 2_000

#: Generous flatness bound: dict probe + pread should be size-blind,
#: but CI machines jitter; drifting past this factor means the index
#: or the eviction bookkeeping picked up a size-dependent path.
FLATNESS_BOUND = 8.0


def fill(store: SegmentStore, count: int, stamp: str) -> None:
    for i in range(count):
        store.put(f"{stamp}-{i}", {"v": i, "stamp": stamp})
    store.flush()


def mean_lookup_s(store: SegmentStore, count: int, stamp: str) -> float:
    rng = random.Random(0xBEEF)
    keys = [f"{stamp}-{rng.randrange(count)}" for _ in range(LOOKUP_SAMPLES)]
    start = time.perf_counter()
    for key in keys:
        if store.get(key) is None:
            raise AssertionError(f"benchmark store lost {key}")
    return (time.perf_counter() - start) / LOOKUP_SAMPLES


def mean_evicting_put_s(store: SegmentStore, stamp: str) -> float:
    start = time.perf_counter()
    for i in range(EVICT_SAMPLES):
        store.put(f"{stamp}-extra-{i}", {"v": i})
    store.flush()
    return (time.perf_counter() - start) / EVICT_SAMPLES


class TestSegmentStoreScale:
    def test_lookup_eviction_and_reopen_stay_flat(self, tmp_path, one_shot):
        baseline_dir = tmp_path / "baseline"
        scale_dir = tmp_path / "scale"

        with SegmentStore(baseline_dir) as baseline:
            fill(baseline, BASELINE_ENTRIES, "base")
            baseline_lookup_s = mean_lookup_s(baseline, BASELINE_ENTRIES, "base")

        scale = SegmentStore(scale_dir)
        load_start = time.perf_counter()
        one_shot(fill, scale, SCALE_ENTRIES, "scale")
        load_s = time.perf_counter() - load_start
        scale_lookup_s = mean_lookup_s(scale, SCALE_ENTRIES, "scale")
        assert len(scale) == SCALE_ENTRIES
        scale.close()

        # Cold open: the rebuild scans segment headers, not values.
        reopened = SegmentStore(scale_dir)
        rebuild_s = float(reopened.stats["rebuild_s"])
        assert len(reopened) == SCALE_ENTRIES
        assert reopened.stats["torn_records"] == 0
        reopen_lookup_s = mean_lookup_s(reopened, SCALE_ENTRIES, "scale")
        reopened.close()

        # Eviction latency: a full bounded store, where every insert
        # evicts, at the baseline size and at scale.
        with SegmentStore(
            tmp_path / "evict-base", max_entries=BASELINE_ENTRIES
        ) as bounded:
            fill(bounded, BASELINE_ENTRIES, "eb")
            baseline_evict_s = mean_evicting_put_s(bounded, "eb")
        with SegmentStore(
            tmp_path / "evict-scale", max_entries=SCALE_ENTRIES
        ) as bounded:
            fill(bounded, SCALE_ENTRIES, "es")
            scale_evict_s = mean_evicting_put_s(bounded, "es")
            assert len(bounded) <= SCALE_ENTRIES

        lookup_ratio = scale_lookup_s / baseline_lookup_s
        evict_ratio = scale_evict_s / baseline_evict_s
        assert lookup_ratio < FLATNESS_BOUND, (
            f"lookups drifted with store size: {scale_lookup_s * 1e6:.2f}us at "
            f"{SCALE_ENTRIES} entries vs {baseline_lookup_s * 1e6:.2f}us at "
            f"{BASELINE_ENTRIES} ({lookup_ratio:.1f}x)"
        )
        assert evict_ratio < FLATNESS_BOUND, (
            f"evicting puts drifted with store size ({evict_ratio:.1f}x)"
        )
        # Cold-open budget: linear in the log, measured in seconds even
        # at the full million (header scan + one index insert per record).
        assert rebuild_s < max(30.0, SCALE_ENTRIES / 20_000)

        if "REPRO_CACHE_SCALE" not in os.environ:
            # The committed snapshot records the full-million run; the
            # quick CI-sized default asserts the ratios but must not
            # overwrite those numbers with small-store ones.
            return
        write_snapshot(
            "cache_store",
            {
                "baseline_entries": BASELINE_ENTRIES,
                "scale_entries": SCALE_ENTRIES,
                "load_s": load_s,
                "lookup_us_baseline": baseline_lookup_s * 1e6,
                "lookup_us_scale": scale_lookup_s * 1e6,
                "lookup_us_reopened": reopen_lookup_s * 1e6,
                "lookup_ratio": lookup_ratio,
                "evict_us_baseline": baseline_evict_s * 1e6,
                "evict_us_scale": scale_evict_s * 1e6,
                "evict_ratio": evict_ratio,
                "cold_open_rebuild_s": rebuild_s,
            },
        )
