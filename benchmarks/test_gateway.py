"""Gateway admission fairness: weighted-fair DRR vs FIFO on a skewed mix.

The serving gateway's acceptance criterion: on the 10k-request skewed
mix (one hot tenant offering 90% of the load against four light
tenants), switching admission from FIFO to weighted deficit round robin
must improve a light tenant's p99 admission wait by at least 3x while
giving up less than 5% of total throughput (makespan).

Both runs drive the *real* :class:`~repro.core.scheduler.DeficitRoundRobin`
structure through the event-driven virtual-clock load generator -- no
threads, no sleeping -- so the comparison is deterministic and
reproduces bit-for-bit on any host.
"""

import pytest

from benchmarks.snapshots import write_snapshot
from repro.serve import FairnessReport, LoadGenerator, skewed_mix

TOTAL_REQUESTS = 10_000
HOT_FRACTION = 0.9
LIGHT_TENANTS = 4
CAPACITY = 8
SEED = 11

#: Acceptance thresholds.
MIN_P99_IMPROVEMENT = 3.0
MAX_THROUGHPUT_LOSS = 0.05


@pytest.fixture(scope="module")
def runs() -> dict[str, FairnessReport]:
    loads = skewed_mix(
        hot_fraction=HOT_FRACTION,
        total_requests=TOTAL_REQUESTS,
        light_tenants=LIGHT_TENANTS,
    )
    return {
        discipline: LoadGenerator(
            loads, capacity=CAPACITY, discipline=discipline, seed=SEED
        ).run()
        for discipline in ("weighted-fair", "fifo")
    }


def light_p99(report: FairnessReport) -> float:
    return max(
        report.wait_percentile(name, 0.99)
        for name in report.weights
        if name != "hot"
    )


def test_drr_beats_fifo_3x_on_light_tenant_p99(runs):
    fair, fifo = runs["weighted-fair"], runs["fifo"]
    improvement = light_p99(fifo) / light_p99(fair)
    assert improvement >= MIN_P99_IMPROVEMENT, (
        f"light-tenant p99 improved only {improvement:.2f}x "
        f"(FIFO {light_p99(fifo):.1f}s vs DRR {light_p99(fair):.1f}s)"
    )


def test_fairness_costs_under_5_percent_throughput(runs):
    fair, fifo = runs["weighted-fair"], runs["fifo"]
    assert fair.makespan_s <= (1.0 + MAX_THROUGHPUT_LOSS) * fifo.makespan_s, (
        f"DRR makespan {fair.makespan_s:.1f}s exceeds FIFO "
        f"{fifo.makespan_s:.1f}s by more than {MAX_THROUGHPUT_LOSS:.0%}"
    )
    # Neither discipline idles a slot over backlog.
    assert fair.idle_while_backlogged_s == 0.0
    assert fifo.idle_while_backlogged_s == 0.0


def test_fair_shares_hold_under_contention(runs):
    fair = runs["weighted-fair"]
    for name in fair.weights:
        assert fair.admitted_share(name) == pytest.approx(
            fair.weight_share(name), rel=0.10
        )


def test_snapshot_gateway_fairness(runs):
    """Emit ``BENCH_gateway_fairness.json`` (committed perf trajectory)."""
    fair, fifo = runs["weighted-fair"], runs["fifo"]
    metrics = {
        "total_requests": TOTAL_REQUESTS,
        "hot_fraction": HOT_FRACTION,
        "light_tenants": LIGHT_TENANTS,
        "capacity": CAPACITY,
        "fair_makespan_s": fair.makespan_s,
        "fifo_makespan_s": fifo.makespan_s,
        "fair_light_p99_wait_s": light_p99(fair),
        "fifo_light_p99_wait_s": light_p99(fifo),
        "light_p99_improvement_x": light_p99(fifo) / light_p99(fair),
        "fair_hot_admitted_share": fair.admitted_share("hot"),
        "fair_light0_admitted_share": fair.admitted_share("light0"),
        "max_fairness_error": max(
            fair.fairness_error(name) for name in fair.weights
        ),
    }
    path = write_snapshot("gateway_fairness", metrics)
    assert path.is_file()
