"""Shared configuration for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure).  The
heavyweight experiment benchmarks run a single round -- they are
end-to-end measurements, not microbenchmarks -- while the substrate
benchmarks (prompt synthesis, parsing, interpretation) use normal
pytest-benchmark statistics.
"""

import pytest


@pytest.fixture
def one_shot(benchmark):
    """Run a heavyweight experiment exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
