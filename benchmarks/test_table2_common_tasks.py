"""Benchmark E1: regenerate Table II (50 common coding tasks).

Prints the table the paper reports and asserts its headline properties:
the Python failure set {11, 21-24} and TS-longer-than-Python average LOC.
"""

from repro.evalx.experiments import table2


def test_table2_regeneration(one_shot):
    result = one_shot(table2.run)
    print()
    print(table2.render(result))
    assert len(result.rows) == 50
    assert result.python_failures == [11, 21, 22, 23, 24]
    assert result.mean_ts_loc > result.mean_py_loc
    # Paper: 7.56 (TS) and 6.52 (Py) average generated lines.
    assert 4.0 < result.mean_ts_loc < 11.0
    assert 3.0 < result.mean_py_loc < 10.0
