"""Benchmark: the wire-transport stack with zero live HTTP.

Two hermetic measurements of the new provider plumbing
(:mod:`repro.llm.http`, :mod:`repro.llm.cassette`, the provider
adapters):

* **adapter marshal/parse throughput** -- how fast each adapter can
  build its wire request and parse a canned reply through the full
  ``HTTPClient`` pipeline (the per-completion CPU overhead the real
  providers add on top of network time);
* **cassette replay throughput** -- completions per second served from
  a recorded cassette directory, which bounds how fast a hermetic
  tier-1 run can drive the real provider code path.

Both emit ``BENCH_transport.json`` so the perf trajectory is tracked in
git alongside the scheduler and response-cache snapshots.
"""

import json

from benchmarks.snapshots import snapshot_path, write_snapshot
from repro.llm.base import user_message
from repro.llm.cassette import CassetteTransport
from repro.llm.http import HTTPClient
from repro.llm.providers import AnthropicProvider, GeminiProvider, OpenAIProvider
from repro.llm.providers.wire import WirePolicy

from tests.llm.fakes import (
    ScriptedTransport,
    anthropic_reply,
    gemini_reply,
    json_response,
    openai_reply,
)

OFFLINE = WirePolicy(live=False, cassette_dir=None, env={})

EXCHANGES = 200

MESSAGES = [user_message("Summarize the transport stack in one sentence.")]

ADAPTERS = [
    (OpenAIProvider, "gpt-bench", openai_reply("the stack, summarized")),
    (AnthropicProvider, "claude-bench", anthropic_reply("the stack, summarized")),
    (GeminiProvider, "gemini-bench", gemini_reply("the stack, summarized")),
]


def drive_adapters() -> dict:
    """EXCHANGES completions through each adapter against a canned reply."""
    counts = {}
    for provider_class, model, reply in ADAPTERS:
        provider = provider_class(
            None,
            api_key="bench-key",
            policy=OFFLINE,
            http=HTTPClient(ScriptedTransport([json_response(reply)])),
        )
        for _ in range(EXCHANGES):
            result = provider.complete(model, MESSAGES, 0.0)
        counts[provider_class.name] = result.usage.total_tokens
    return counts


def record_cassettes(directory) -> None:
    for provider_class, model, reply in ADAPTERS:
        provider = provider_class(
            None,
            api_key="bench-key",
            policy=OFFLINE,
            http=HTTPClient(
                CassetteTransport(
                    directory, mode="record", inner=ScriptedTransport([json_response(reply)])
                )
            ),
        )
        provider.complete(model, MESSAGES, 0.0)


def drive_replay(directory) -> int:
    """EXCHANGES replayed completions per adapter, policy-wired only."""
    policy = WirePolicy(live=False, cassette_dir=directory, env={})
    served = 0
    for provider_class, model, _reply in ADAPTERS:
        provider = provider_class(None, policy=policy)
        for _ in range(EXCHANGES):
            provider.complete(model, MESSAGES, 0.0)
            served += 1
    return served


class TestTransportThroughput:
    def test_adapter_marshal_parse_throughput(self, benchmark):
        counts = benchmark.pedantic(drive_adapters, rounds=3, iterations=1)
        assert set(counts) == {"openai", "anthropic", "gemini"}
        assert all(total > 0 for total in counts.values())

        per_exchange_us = benchmark.stats.stats.mean / (EXCHANGES * len(ADAPTERS)) * 1e6
        write_snapshot(
            "transport",
            {
                "adapters": len(ADAPTERS),
                "exchanges_per_adapter": EXCHANGES,
                "adapter_pipeline_us_per_completion": per_exchange_us,
            },
        )

    def test_cassette_replay_throughput(self, tmp_path, benchmark):
        record_cassettes(tmp_path)
        served = benchmark.pedantic(
            drive_replay, args=(tmp_path,), rounds=3, iterations=1
        )
        assert served == EXCHANGES * len(ADAPTERS)

        replays_per_s = served / benchmark.stats.stats.mean
        path = snapshot_path("transport")
        existing = (
            json.loads(path.read_text(encoding="utf-8"))["metrics"]
            if path.exists()
            else {}
        )
        existing.update(
            {
                "cassette_replays_per_s": replays_per_s,
                "cassette_recordings": len(ADAPTERS),
            }
        )
        write_snapshot("transport", existing)
        # Replay must be fast enough that hermetic suites stay cheap:
        # well north of a thousand completions per second.
        assert replays_per_s > 1000, f"cassette replay too slow: {replays_per_s:.0f}/s"
