"""Benchmarks E6/E7: the design-choice ablations from DESIGN.md."""

from repro.evalx.experiments import ablation_examples, ablation_prompt


def test_ablation_feedback_retries(one_shot):
    rows = one_shot(ablation_prompt.run, 4)
    print()
    print(ablation_prompt.render(rows))
    by_label = {row.label: row for row in rows}
    # Retries must recover what corruption loses.
    assert (
        by_label["corruption=60%, retries=9"].success_rate
        > by_label["corruption=60%, retries=0"].success_rate + 0.2
    )


def test_ablation_validation_examples(one_shot):
    rows = one_shot(ablation_examples.run, (0.0, 0.6, 0.9))
    print()
    print(ablation_examples.render(rows))
    worst = rows[-1]
    assert worst.with_examples_correct == 1.0
    assert worst.without_examples_correct < worst.with_examples_correct
