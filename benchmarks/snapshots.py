"""Perf-trajectory snapshots: ``BENCH_<name>.json`` at the repo root.

Each benchmark that guards an acceptance criterion also emits a small
JSON snapshot of the numbers behind it.  The files are committed, so
the perf trajectory of the repo is visible in plain ``git log -p``
without re-running anything -- and a regression shows up as a diff in
review, not as an archaeology project.

Snapshots are observability, not assertions: the hard thresholds stay
in the benchmarks themselves.  Only stable, machine-independent metrics
belong here (virtual-clock seconds, counts, ratios); host-dependent
wall-clock timings would churn on every machine.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Mapping

#: The repo root -- benchmarks/ lives one level below it.
REPO_ROOT = Path(__file__).resolve().parent.parent

SNAPSHOT_VERSION = 1


def snapshot_path(name: str) -> Path:
    """Where the snapshot for ``name`` lives (``BENCH_<name>.json``)."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_snapshot(name: str, metrics: Mapping[str, Any]) -> Path:
    """Write ``metrics`` to ``BENCH_<name>.json`` and return the path.

    Values must be JSON-serializable; floats are rounded to keep diffs
    readable across runs that differ only in float noise.
    """
    payload = {
        "version": SNAPSHOT_VERSION,
        "name": name,
        "python": platform.python_version(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": {key: _round(value) for key, value in sorted(metrics.items())},
    }
    path = snapshot_path(name)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def _round(value: Any) -> Any:
    if isinstance(value, float):
        return round(value, 4)
    return value
