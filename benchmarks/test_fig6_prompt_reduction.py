"""Benchmark E3: regenerate Figure 6 (prompt-length reduction)."""

import pytest

from repro.evalx.experiments import fig6


def test_fig6_regeneration(one_shot):
    result = one_shot(fig6.run)
    print()
    print(fig6.render(result))
    # Paper: 16.14 % mean reduction across 50 benchmarks; all typed
    # responses must parse (the format-congruence check).
    assert len(result.rows) == 50
    assert result.mean_reduction_percent == pytest.approx(16.14, abs=1.5)
    assert result.format_conformance_rate == 1.0
